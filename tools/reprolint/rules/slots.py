"""RL007 — per-event / per-window classes declare ``__slots__``.

The engines construct one :class:`~repro.events.event.Event` per stream
element and one snapshot per window instance; at bench scale those are
millions of objects.  A ``__dict__`` per instance roughly doubles the
footprint and slows attribute access, so every class in the hot
construction paths (``events/``, ``core/snapshot.py``) must be slotted —
as a ``__slots__`` assignment or ``@dataclass(slots=True)``.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from reprolint.framework import ModuleContext, Rule, Violation, dotted_name

__all__ = ["SlotsRule"]

#: Base classes whose subclasses cannot (or need not) be slotted: enums
#: and exceptions carry class-level machinery, Protocols/ABCs are never
#: instantiated per event.
_EXEMPT_BASES = {
    "ABC",
    "BaseException",
    "Enum",
    "Exception",
    "Flag",
    "IntEnum",
    "IntFlag",
    "NamedTuple",
    "Protocol",
    "ReproError",
    "StrEnum",
    "TypedDict",
}


def _base_name(base: ast.expr) -> str | None:
    name = dotted_name(base)
    if name is not None:
        return name.split(".")[-1]
    if isinstance(base, ast.Subscript):  # Protocol[T], Generic[T]
        return _base_name(base.value)
    return None


def _is_exempt(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = _base_name(base)
        if name in _EXEMPT_BASES or name == "Generic":
            return True
        if name is not None and (name.endswith("Error") or name.endswith("Warning")):
            return True
    return bool(node.keywords)  # metaclass= etc.: out of this rule's scope


def _dataclass_decorator(node: ast.ClassDef) -> ast.Call | ast.Name | ast.Attribute | None:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return decorator  # type: ignore[return-value]
    return None


def _declares_slots(node: ast.ClassDef) -> bool:
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name) and statement.target.id == "__slots__":
                return True
    return False


class SlotsRule(Rule):
    id: ClassVar[str] = "RL007"
    title: ClassVar[str] = "per-event/per-window classes must declare __slots__"
    rationale: ClassVar[str] = (
        "Events and snapshots are constructed per stream element / per "
        "window instance — millions of objects at bench scale.  An instance "
        "__dict__ doubles their footprint, so classes in events/ and "
        "core/snapshot.py must declare __slots__ or use "
        "@dataclass(slots=True).  Enums, exceptions, Protocols and ABCs "
        "are exempt."
    )
    scope: ClassVar[tuple[str, ...]] = ("repro/events/", "repro/core/snapshot.py")

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or _is_exempt(node):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is not None:
                if isinstance(decorator, ast.Call) and any(
                    keyword.arg == "slots"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                    for keyword in decorator.keywords
                ):
                    continue
                yield module.violation(
                    self,
                    node,
                    f"dataclass {node.name!r} on a per-event path should pass "
                    "slots=True",
                )
            elif not _declares_slots(node):
                yield module.violation(
                    self,
                    node,
                    f"class {node.name!r} on a per-event path must declare "
                    "__slots__",
                )
