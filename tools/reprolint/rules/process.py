"""RL003 — callables that cross process boundaries must be importable.

PR 5's incident: a lambda handed to the sharded executor worked under
``fork`` and died under ``spawn`` (pickle cannot serialize lambdas,
closures, or functions defined inside other functions).  Anything the
driver ships to a worker — engine factories, optimizer specs, kernel
backends — must be a module-level callable or a registry *name*.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from reprolint.framework import (
    ModuleContext,
    Rule,
    Violation,
    call_name,
    parent_of,
)

__all__ = ["ProcessBoundaryCallableRule"]

#: Constructors / entry points whose callable arguments cross the
#: process boundary.
_BOUNDARY_CALLEES = {"ShardedStreamingExecutor", "run_sharded"}

#: Keyword names that denote boundary-crossing callables wherever they
#: appear (factories are pickled into worker processes under spawn).
_BOUNDARY_KEYWORDS = {"engine_factory", "optimizer_factory", "kernel_factory"}


def _local_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside other functions (not picklable)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            parent = parent_of(node)
            while parent is not None:
                if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(node.name)
                    break
                parent = parent_of(parent)
    return names


class ProcessBoundaryCallableRule(Rule):
    id: ClassVar[str] = "RL003"
    title: ClassVar[str] = "process-boundary callables must be module-level or registry names"
    rationale: ClassVar[str] = (
        "The sharded executor pickles engine/optimizer/kernel factories into "
        "worker processes; under the spawn start method lambdas, closures, "
        "and nested functions fail to pickle (PR 5 incident).  Pass a "
        "module-level callable or a registry name string instead."
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        local_names = _local_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            short = callee.split(".")[-1] if callee else None
            is_boundary_call = short in _BOUNDARY_CALLEES
            for position, arg in enumerate(node.args):
                if is_boundary_call:
                    yield from self._check_value(
                        module, arg, local_names, f"positional argument {position}"
                    )
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                if is_boundary_call or keyword.arg in _BOUNDARY_KEYWORDS:
                    yield from self._check_value(
                        module, keyword.value, local_names, f"argument {keyword.arg!r}"
                    )

    def _check_value(
        self,
        module: ModuleContext,
        value: ast.expr,
        local_names: set[str],
        where: str,
    ) -> Iterator[Violation]:
        if isinstance(value, ast.Lambda):
            yield module.violation(
                self,
                value,
                f"lambda passed as {where} cannot cross a process boundary "
                "under spawn; use a module-level callable or registry name",
            )
        elif isinstance(value, ast.Name) and value.id in local_names:
            yield module.violation(
                self,
                value,
                f"locally-defined function {value.id!r} passed as {where} "
                "cannot be pickled under spawn; hoist it to module level",
            )
