"""RL005 — numpy stays quarantined behind the kernel backend seam.

The reproduction installs and runs dependency-free; numpy is an optional
accelerator reached only through the kernel-backend registry.  A single
top-level ``import numpy`` anywhere else makes the whole package refuse
to import on a clean interpreter, which is exactly how optional
dependencies rot into required ones.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from reprolint.framework import ModuleContext, Rule, Violation

__all__ = ["NumpyImportRule"]


def _mentions_type_checking(test: ast.expr) -> bool:
    return any(
        (isinstance(node, ast.Name) and node.id == "TYPE_CHECKING")
        or (isinstance(node, ast.Attribute) and node.attr == "TYPE_CHECKING")
        for node in ast.walk(test)
    )


class NumpyImportRule(Rule):
    id: ClassVar[str] = "RL005"
    title: ClassVar[str] = "no top-level numpy import outside core/kernels_numpy.py"
    rationale: ClassVar[str] = (
        "The pure-Python install is dependency-free; numpy is optional and "
        "reached only through the kernel-backend registry.  Import it at "
        "function scope (or under TYPE_CHECKING) so every other module "
        "imports cleanly without it."
    )
    exclude: ClassVar[tuple[str, ...]] = ("repro/core/kernels_numpy.py",)

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        yield from self._check_block(module, module.tree.body)

    def _check_block(self, module: ModuleContext, body: list[ast.stmt]) -> Iterator[Violation]:
        for statement in body:
            if isinstance(statement, ast.Import):
                for alias in statement.names:
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        yield self._flag(module, statement)
                        break
            elif isinstance(statement, ast.ImportFrom):
                if statement.module is not None and (
                    statement.module == "numpy" or statement.module.startswith("numpy.")
                ):
                    yield self._flag(module, statement)
            elif isinstance(statement, ast.If):
                if not _mentions_type_checking(statement.test):
                    yield from self._check_block(module, statement.body)
                yield from self._check_block(module, statement.orelse)
            elif isinstance(statement, ast.Try):
                # try/except ImportError probing is still a top-level import:
                # it runs at import time and its success changes behavior.
                yield from self._check_block(module, statement.body)
                for handler in statement.handlers:
                    yield from self._check_block(module, handler.body)
                yield from self._check_block(module, statement.orelse)
                yield from self._check_block(module, statement.finalbody)
            elif isinstance(statement, (ast.With, ast.AsyncWith, ast.ClassDef)):
                yield from self._check_block(module, statement.body)
            # Function and class bodies are deliberately not descended into:
            # deferred imports are the sanctioned pattern.

    def _flag(self, module: ModuleContext, statement: ast.stmt) -> Violation:
        return module.violation(
            self,
            statement,
            "top-level numpy import outside core/kernels_numpy.py; defer it "
            "to function scope behind the kernel-backend registry",
        )
