"""RL009 — checkpoint files are written atomically, never in place.

PR 8's incident class: a checkpoint that is ``open(path, "wb")``-written
directly to its final name is torn the instant a worker dies mid-write —
and the whole point of a checkpoint is to be readable *after* a crash.
The repo's discipline (``repro/runtime/checkpoint.py``) is write-temp +
fsync + rename: the blob lands under a temporary name, is flushed and
``os.fsync``\\ ed, then ``os.replace``\\ d over the final path, so at
every instant the final name is either the old complete file or the new
complete file.  This rule enforces the shape statically: in any module
whose file name mentions checkpoints, every function that opens a file
for writing (or calls ``Path.write_bytes``/``write_text``) must also
call ``os.replace`` or ``os.rename`` **and** ``os.fsync`` — the rename
without the fsync is not durable, the fsync without the rename is not
atomic.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Optional

from reprolint.framework import (
    ModuleContext,
    Rule,
    Violation,
    call_name,
    enclosing_function,
    name_matches,
)

__all__ = ["AtomicCheckpointWriteRule"]

#: ``open`` modes that create or mutate the target in place.
_WRITE_MODE_CHARS = frozenset("wax+")

#: Path methods that clobber the target file directly.
_PATH_WRITERS = frozenset({"write_bytes", "write_text"})


def _open_write_mode(node: ast.Call) -> bool:
    """True for ``open(path, "wb")``-shaped calls with a writing mode."""
    callee = call_name(node)
    if callee is None or callee.split(".")[-1] != "open":
        return False
    mode: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
        # No mode (default "r") or a dynamic mode we cannot see through.
        return False
    return bool(_WRITE_MODE_CHARS & set(mode.value))


def _is_file_write(node: ast.Call) -> bool:
    if _open_write_mode(node):
        return True
    callee = call_name(node)
    return callee is not None and callee.split(".")[-1] in _PATH_WRITERS


def _calls_any(scope: ast.AST, patterns: tuple[str, ...]) -> bool:
    for child in ast.walk(scope):
        if isinstance(child, ast.Call):
            callee = call_name(child)
            if any(name_matches(callee, pattern) for pattern in patterns):
                return True
    return False


class AtomicCheckpointWriteRule(Rule):
    id: ClassVar[str] = "RL009"
    title: ClassVar[str] = "checkpoint writes must be write-temp + fsync + rename"
    rationale: ClassVar[str] = (
        "A checkpoint written in place is torn by the very crash it exists "
        "to survive.  Functions in checkpoint modules that open files for "
        "writing must also fsync the data and os.replace/os.rename it over "
        "the final name, so readers always find a complete file."
    )
    # Scope is by *file name*, not package prefix: any module whose
    # basename mentions checkpoints is held to the atomic-write shape,
    # wherever it lives (runtime, tools, fixtures).
    scope: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, relpath: str) -> bool:
        return "checkpoint" in relpath.rsplit("/", 1)[-1].lower()

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not _is_file_write(node):
                continue
            scope: ast.AST = enclosing_function(node) or module.tree
            missing: list[str] = []
            if not _calls_any(scope, ("os.replace", "os.rename")):
                missing.append("os.replace/os.rename")
            if not _calls_any(scope, ("os.fsync",)):
                missing.append("os.fsync")
            if missing:
                yield module.violation(
                    self,
                    node,
                    "in-place checkpoint write: the enclosing scope never calls "
                    + " or ".join(missing)
                    + " (write to a temp file, fsync, then rename over the final "
                    "name)",
                )
