"""RL011 — arrival-order decisions go through the reorder helpers.

PR 10 made :mod:`repro.runtime.reorder` the single home of the stream's
arrival-order contract: the watermark math, the ``(time, sequence)``
total order, and every rejection message live there (plus the boundary
check in :mod:`repro.events.stream`).  Before that, three copy-pasted
strict-order checks had already drifted apart — one compared time only,
one had its error message backwards — and any new raw comparison of an
event's time against a stream cursor would restart exactly that drift.
A module that needs an ordering decision calls ``ensure_in_order`` /
``ensure_shared_order`` / ``ReorderBuffer`` instead of comparing a
timestamp against a ``clock``/``latest`` cursor inline.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from reprolint.framework import ModuleContext, Rule, Violation, dotted_name

__all__ = ["RawOrderComparisonRule"]

#: Terminal-name shapes of a stream-position cursor ("where the stream is").
_CURSOR_PREFIXES = ("last", "latest", "prev")


def _segments(node: ast.AST) -> list[str]:
    """Underscore-stripped, lowered segments of a Name/Attribute chain."""
    dotted = dotted_name(node)
    if dotted is None:
        return []
    return [part.lstrip("_").lower() for part in dotted.split(".")]


def _is_cursor(node: ast.AST) -> bool:
    """A stream-position cursor anywhere in the chain: ``self._clock``,
    ``latest.time``, ``prev_seq`` all read the stream's position."""
    return any(
        "clock" in segment or segment.startswith(_CURSOR_PREFIXES)
        for segment in _segments(node)
    )


def _is_event_term(node: ast.AST) -> bool:
    segments = _segments(node)
    if not segments:
        return False
    terminal = segments[-1]
    return terminal in ("event", "seq", "sequence") or terminal.endswith(
        ("time", "seq", "sequence")
    )


class RawOrderComparisonRule(Rule):
    id: ClassVar[str] = "RL011"
    title: ClassVar[str] = "no raw event-time-vs-cursor ordering comparisons"
    rationale: ClassVar[str] = (
        "The arrival-order contract (watermark math, the (time, sequence) "
        "total order, the rejection wording) lives in repro.runtime.reorder "
        "and the EventStream.append boundary check.  An inline "
        "`event.time < self._clock`-shaped comparison re-encodes that "
        "contract locally, which is how the pre-PR-10 order checks drifted "
        "into a time-only test and a backwards error message.  Call the "
        "reorder helpers (ensure_in_order, ensure_shared_order, "
        "ReorderBuffer) instead."
    )
    #: Where arrival-order enforcement lives (and where it drifted before).
    #: The pattern engines (repro/core, repro/greta) compare events for
    #: *pattern* semantics — predecessor ordering inside a window, negation
    #: intervals — which is a different contract and stays out of scope.
    scope: ClassVar[tuple[str, ...]] = ("repro/runtime/", "repro/events/")
    #: The two sanctioned homes of the ordering contract.
    exclude: ClassVar[tuple[str, ...]] = (
        "repro/events/stream.py",
        "repro/runtime/reorder.py",
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            left = node.left
            for op, right in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                    cursor_left, cursor_right = _is_cursor(left), _is_cursor(right)
                    if (cursor_left and not cursor_right and _is_event_term(right)) or (
                        cursor_right and not cursor_left and _is_event_term(left)
                    ):
                        yield module.violation(
                            self,
                            node,
                            "raw ordering comparison of an event time/sequence "
                            "against a stream cursor; use the repro.runtime."
                            "reorder helpers (ensure_in_order, "
                            "ensure_shared_order, ReorderBuffer)",
                        )
                        break
                left = right
