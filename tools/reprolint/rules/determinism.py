"""RL001 / RL006 — determinism on routing, merge, and result paths.

The sharded runtime's contract is that results are bit-identical across
shard counts, worker counts, start methods, *and interpreter hash seeds*.
Two incident classes broke it historically:

* routing/ordering derived from interpreter identity — builtin ``hash()``
  is ``PYTHONHASHSEED``-randomized for strings, ``id()`` differs per
  process, and ``repr``-keyed sorts order ``10.0`` before ``2.0`` and mix
  types lexicographically (PR 4's shard-routing bug);
* clocks, RNGs, and unordered-set iteration feeding result content.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from reprolint.framework import (
    ModuleContext,
    Rule,
    Violation,
    call_name,
    name_matches,
)

__all__ = ["UnstableIdentityOrderingRule", "NondeterminismRule"]

_SORT_CALLEES = {"sorted", "min", "max"}


def _is_repr_key(key: ast.expr) -> bool:
    """True for ``key=repr``, ``key=str``, or a lambda whose body calls them."""
    if isinstance(key, ast.Name) and key.id in {"repr", "str"}:
        return True
    if isinstance(key, ast.Lambda):
        body = key.body
        if isinstance(body, ast.Call):
            callee = call_name(body)
            if callee in {"repr", "str"}:
                return True
    return False


class UnstableIdentityOrderingRule(Rule):
    id: ClassVar[str] = "RL001"
    title: ClassVar[str] = "no hash()/id()/repr-keyed ordering on routing and merge paths"
    rationale: ClassVar[str] = (
        "Builtin hash() is PYTHONHASHSEED-randomized for str/bytes and id() is "
        "per-process, so neither may feed shard routing, partition keys, or "
        "merge order; repr/str sort keys order numbers lexicographically and "
        "interleave types by class-name spelling.  Use "
        "repro.runtime.sharding.stable_shard_hash (BLAKE2b) for routing and "
        "repro.runtime.partitioner.group_sort_key for ordering (PR 4 incident)."
    )
    scope: ClassVar[tuple[str, ...]] = ("repro/runtime/",)

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            if callee in {"hash", "id"}:
                yield module.violation(
                    self,
                    node,
                    f"builtin {callee}() is not stable across processes/seeds; "
                    "use stable_shard_hash (BLAKE2b) on routing paths",
                )
                continue
            is_sort_call = callee in _SORT_CALLEES or (
                isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
            )
            if not is_sort_call:
                continue
            for keyword in node.keywords:
                if keyword.arg == "key" and _is_repr_key(keyword.value):
                    yield module.violation(
                        self,
                        keyword.value,
                        "repr/str sort keys are lexicographic (10.0 < 2.0) and "
                        "type-name dependent; sort with an explicit typed key "
                        "such as group_sort_key",
                    )


#: Calls that read wall clocks, RNG state, or process identity.
_FORBIDDEN_CALLS = (
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "uuid.uuid1",
    "uuid.uuid4",
)

#: ``random.Random(seed)`` / ``random.SystemRandom`` construction is fine
#: (datasets use seeded generators); module-level convenience functions
#: draw from hidden global state.
_RANDOM_ALLOWED = {"Random", "SystemRandom", "seed"}


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return call_name(node) in {"set", "frozenset"}
    return False


class NondeterminismRule(Rule):
    id: ClassVar[str] = "RL006"
    title: ClassVar[str] = "no clocks, global RNG, or unordered-set iteration on result paths"
    rationale: ClassVar[str] = (
        "Result-producing code must be a pure function of the input stream: "
        "no wall clocks (time.time / datetime.now), no global-state RNG "
        "(random.random and friends; seeded random.Random instances are "
        "fine), no uuid1/uuid4, and no iteration over freshly-built sets, "
        "whose order depends on the interpreter hash seed.  Merges order "
        "their output with group_sort_key (PRs 4-5 incidents)."
    )
    scope: ClassVar[tuple[str, ...]] = (
        "repro/runtime/",
        "repro/core/",
        "repro/greta/",
        "repro/template/",
        "repro/baselines/",
        "repro/events/",
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                callee = call_name(node)
                for pattern in _FORBIDDEN_CALLS:
                    if name_matches(callee, pattern):
                        yield module.violation(
                            self,
                            node,
                            f"{pattern}() injects per-run state into a result "
                            "path; thread explicit inputs instead",
                        )
                        break
                else:
                    if (
                        callee is not None
                        and callee.split(".")[0] == "random"
                        and len(callee.split(".")) == 2
                        and callee.split(".")[1] not in _RANDOM_ALLOWED
                    ):
                        yield module.violation(
                            self,
                            node,
                            f"{callee}() draws from the global RNG; construct a "
                            "seeded random.Random and thread it through",
                        )
            iter_expr: ast.expr | None = None
            if isinstance(node, ast.For):
                iter_expr = node.iter
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_set_expression(generator.iter):
                        iter_expr = generator.iter
                        break
            if iter_expr is not None and _is_set_expression(iter_expr):
                yield module.violation(
                    self,
                    iter_expr,
                    "iteration order over a set depends on the hash seed; "
                    "iterate a sorted() sequence or dict.fromkeys() instead",
                )
