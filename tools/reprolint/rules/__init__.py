"""The rule catalogue.

``ALL_RULES`` is the ordered registry the CLI and the test suite iterate;
rule classes stay importable individually for targeted fixtures.
"""

from reprolint.rules.atomicity import AtomicCheckpointWriteRule
from reprolint.rules.blocks import EventConstructionRule
from reprolint.rules.determinism import NondeterminismRule, UnstableIdentityOrderingRule
from reprolint.rules.exceptions import ExceptionDisciplineRule
from reprolint.rules.imports import NumpyImportRule
from reprolint.rules.ordering import RawOrderComparisonRule
from reprolint.rules.process import ProcessBoundaryCallableRule
from reprolint.rules.resources import SharedMemoryUnlinkRule
from reprolint.rules.slots import SlotsRule
from reprolint.rules.windows import FloatWindowIndexRule

#: Every rule, in id order.
ALL_RULES = (
    UnstableIdentityOrderingRule,  # RL001
    FloatWindowIndexRule,  # RL002
    ProcessBoundaryCallableRule,  # RL003
    SharedMemoryUnlinkRule,  # RL004
    NumpyImportRule,  # RL005
    NondeterminismRule,  # RL006
    SlotsRule,  # RL007
    ExceptionDisciplineRule,  # RL008
    AtomicCheckpointWriteRule,  # RL009
    EventConstructionRule,  # RL010
    RawOrderComparisonRule,  # RL011
)

__all__ = [
    "ALL_RULES",
    "AtomicCheckpointWriteRule",
    "EventConstructionRule",
    "ExceptionDisciplineRule",
    "FloatWindowIndexRule",
    "NondeterminismRule",
    "NumpyImportRule",
    "ProcessBoundaryCallableRule",
    "RawOrderComparisonRule",
    "SharedMemoryUnlinkRule",
    "SlotsRule",
    "UnstableIdentityOrderingRule",
]
