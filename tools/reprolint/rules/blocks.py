"""RL010 — the runtime hot path consumes blocks, not fresh ``Event``s.

PR 9 made :class:`~repro.events.block.EventBlock` the native in-memory
format of the ingest-to-fold path: the router partitions columns, workers
rebuild blocks from the wire bytes, and the streaming executor folds runs
straight from the columns.  The per-event object is a *view* materialized
lazily at API edges (``EventBlock.event_at``), never a unit of transport
or processing.  A stray ``Event(...)`` constructor inside one of the
block-path modules reintroduces exactly the per-event allocation the
columnar refactor removed — silently, since the differential suites only
check values, not allocation behaviour.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from reprolint.framework import ModuleContext, Rule, Violation, call_name, name_matches

__all__ = ["EventConstructionRule"]


class EventConstructionRule(Rule):
    id: ClassVar[str] = "RL010"
    title: ClassVar[str] = "no per-event Event(...) construction in block-path modules"
    rationale: ClassVar[str] = (
        "The runtime hot path is columnar end to end: blocks are routed, "
        "shipped, and folded as columns, and per-event views come only from "
        "EventBlock.event_at at API edges.  Constructing Event objects "
        "inside the block-path modules reintroduces per-event allocation "
        "that the differential suites cannot catch (values stay identical, "
        "throughput regresses)."
    )
    #: Only the modules on the block hot path; decoding/view construction
    #: legitimately builds events elsewhere (events/, datasets/, checkpoint
    #: replay).
    scope: ClassVar[tuple[str, ...]] = (
        "repro/runtime/streaming.py",
        "repro/runtime/sharding.py",
        "repro/runtime/shared_windows.py",
        "repro/runtime/transport.py",
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if name_matches(call_name(node), "Event"):
                yield module.violation(
                    self,
                    node,
                    "Event(...) on the block hot path; use EventBlock views "
                    "(event_at/select/slice) or keep the columns",
                )
