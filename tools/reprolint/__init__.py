"""reprolint — AST-based invariant checker for the HAMLET reproduction.

Every correctness incident in this repo's history was a violation of a
*machine-checkable* invariant: float window keys, repr-keyed sorts on
routing paths, closures handed to spawned workers, leaked shared-memory
segments.  ``reprolint`` encodes those invariants once, as stdlib-``ast``
rules with zero runtime dependencies, and checks every change mechanically.

Usage::

    reprolint src             # lint a tree, exit 1 on violations
    reprolint --list-rules    # print the rule catalogue

Suppress a finding in place with a trailing comment on the flagged line::

    value = hash(key)  # reprolint: disable=RL001

See ``docs/DESIGN.md`` ("Enforced invariants") for the rule table and the
incident that motivated each rule.
"""

from reprolint.framework import (
    LintRunner,
    ModuleContext,
    Rule,
    Violation,
    lint_paths,
    lint_source,
)
from reprolint.rules import ALL_RULES

__version__ = "0.1.0"

__all__ = [
    "ALL_RULES",
    "LintRunner",
    "ModuleContext",
    "Rule",
    "Violation",
    "lint_paths",
    "lint_source",
]
