"""Console entry point: ``python -m faultline``.

Sweeps kill points × death modes over a fixed-seed synthetic workload,
running each spec through :func:`faultline.run_differential`, and prints
one verdict line per case.  Exit status: 0 when every injected run
recovered to a bit-identical report with at least one restart and no
leaked checkpoint temp files, 1 otherwise, 2 on usage errors.

The default sweep covers every kill point with both ``exit`` and
SIGKILL deaths; ``--spec`` replaces it with one explicit
:data:`~repro.runtime.faultpoints.FAULTLINE_ENV` spec.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Optional, Sequence

from faultline import run_differential
from repro.events.event import Event
from repro.query.query import Query
from repro.query.windows import Window
from repro.runtime.faultpoints import KILL_POINTS

__all__ = ["main"]


def _workload() -> list[Query]:
    from repro.query import kleene, seq

    window = Window(16.0, 4.0)
    return [
        Query.build(seq("A", kleene("B")), group_by=("g",), window=window, name="flq1"),
        Query.build(seq("C", kleene("B")), group_by=("g",), window=window, name="flq2"),
    ]


def _stream(size: int, seed: int) -> list[Event]:
    rng = random.Random(seed)
    events = []
    for index in range(size):
        type_name = rng.choices(("A", "B", "C"), weights=(1, 3, 1))[0]
        events.append(
            Event(type_name, float(index) * 0.25, {"g": float(rng.randint(1, 8))})
        )
    return events


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="faultline",
        description="Differential fault injection for the sharded runtime: "
        "kill a worker at a chosen point, recover, demand bit-identity.",
    )
    parser.add_argument(
        "--spec",
        default=None,
        help="explicit faultline spec (point[@shard][:nth][:mode][:e<N>|:eany]); "
        "default: sweep every kill point in both exit and kill modes",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="shard worker processes (default: 2)"
    )
    parser.add_argument(
        "--transport",
        choices=("pickle", "shm"),
        action="append",
        default=None,
        help="transport(s) to sweep (repeatable; default: both)",
    )
    parser.add_argument(
        "--events", type=int, default=3000, help="synthetic stream length (default: 3000)"
    )
    parser.add_argument("--seed", type=int, default=7, help="stream seed (default: 7)")
    parser.add_argument(
        "--batch-size", type=int, default=64, help="events per shipped batch (default: 64)"
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=4,
        help="windows between checkpoints (default: 4)",
    )
    return parser


def _sweep_specs(workers: int) -> list[str]:
    # One death per case, on a non-zero shard when there is one (exercises
    # the routing of recovery to the right shard).  pre-report is reached
    # once per run, so it fires on its first hit; loop-interior points
    # fire a few batches in.
    shard = 1 if workers > 1 else 0
    specs = []
    for point in KILL_POINTS:
        nth = 1 if point == "pre-report" else 3
        for mode in ("exit", "kill"):
            specs.append(f"{point}@{shard}:{nth}:{mode}")
    return specs


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    arguments = parser.parse_args(argv)
    if arguments.workers < 1:
        parser.error("--workers must be >= 1 (fault injection needs processes to kill)")
    transports = arguments.transport or ["pickle", "shm"]
    specs = [arguments.spec] if arguments.spec else _sweep_specs(arguments.workers)
    failures = 0
    for transport in transports:
        for spec in specs:
            result = run_differential(
                _workload,
                lambda: _stream(arguments.events, arguments.seed),
                spec=spec,
                workers=arguments.workers,
                transport=transport,
                batch_size=arguments.batch_size,
                checkpoint_interval=arguments.checkpoint_interval,
            )
            restarts = result.recovery.restarts if result.recovery else 0
            ok = result.identical and restarts >= 1 and not result.leaked_temporaries
            failures += 0 if ok else 1
            verdict = "ok" if ok else "FAIL"
            print(
                f"{verdict:4s} {transport:6s} {spec:32s} "
                f"identical={result.identical} restarts={restarts} "
                f"replayed={result.recovery.replayed_batches if result.recovery else 0} "
                f"leaked_tmp={len(result.leaked_temporaries)}"
            )
    if failures:
        print(f"{failures} case(s) failed")
        return 1
    print("all cases recovered to bit-identical reports")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
