"""``python -m faultline`` delegates to :func:`faultline.cli.main`."""

import sys

from faultline.cli import main

sys.exit(main())
