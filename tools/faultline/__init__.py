"""faultline — differential fault-injection harness for the sharded runtime.

The recovery machinery's oracle is *bit-identical reports*: SIGKILL (or
``os._exit``) a shard worker at the worst possible instant, let the
driver recover it, and the merged report must equal — canonically
serialized, byte for byte — the report of an uninterrupted run.  This
package orchestrates that experiment:

* :func:`canonical_report` — the canonical serialization both sides are
  compared under (totals + ordered partition results, the same form the
  determinism test suite uses);
* :func:`run_differential` — run one workload twice over the same
  synthetic stream, clean and with a :mod:`repro.runtime.faultpoints`
  spec armed, and report whether the two canonical forms match along
  with the recovery counters;
* ``python -m faultline`` (see :mod:`faultline.cli`) — sweep kill
  points × modes × transports from the command line; exit 0 only if
  every injected run recovered to bit-identity.

The kill points themselves live in the runtime
(:mod:`repro.runtime.faultpoints`): deaths must happen *inside* the
worker loop at named sites, which no external killer can time reliably.
This package is only the driver of the experiment.  Randomized
minutes-scale soaking (external SIGKILLs at random times, memory-ceiling
tracking) lives in ``benchmarks/soak.py`` and reuses these helpers.
"""

from __future__ import annotations

import glob
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.events.event import Event
from repro.query.query import Query
from repro.runtime.executor import ExecutionReport
from repro.runtime.faultpoints import FAULTLINE_ENV, parse_faultline
from repro.runtime.metrics import RecoveryStats
from repro.runtime.sharding import ShardedStreamingExecutor

__all__ = [
    "DifferentialResult",
    "canonical_report",
    "checkpoint_temp_files",
    "run_differential",
]


def canonical_report(report: ExecutionReport) -> str:
    """The canonical serialization reports are compared under.

    Totals sorted by query name plus the partition results in their
    merged (deterministic) order — group keys via ``repr`` so numeric
    collapse (``4`` vs ``4.0``) cannot hide a routing difference.  Two
    runs are "bit-identical" exactly when these strings are equal.
    """
    return json.dumps(
        {
            "totals": sorted(report.totals.items()),
            "partitions": [
                [
                    repr(partition.group_key),
                    partition.window_index,
                    sorted(partition.results.items()),
                ]
                for partition in report.partition_results
            ],
        },
        sort_keys=True,
    )


def checkpoint_temp_files(directory: str) -> list[str]:
    """Orphaned checkpoint temp files under ``directory`` (leak check)."""
    return sorted(glob.glob(os.path.join(directory, "*.tmp")))


@dataclass
class DifferentialResult:
    """Outcome of one clean-versus-injected comparison."""

    #: The armed :data:`~repro.runtime.faultpoints.FAULTLINE_ENV` spec.
    spec: str
    #: Canonical forms matched (the recovery contract held).
    identical: bool
    #: Recovery counters of the injected run (restarts, replay, bytes).
    recovery: Optional[RecoveryStats]
    #: Orphaned checkpoint temp files left behind by the injected run.
    leaked_temporaries: list[str]
    #: The two reports, for post-mortems when ``identical`` is False.
    clean: ExecutionReport
    injected: ExecutionReport


def run_differential(
    workload_factory: Callable[[], Sequence[Query]],
    stream_factory: Callable[[], Iterable[Event]],
    *,
    spec: str,
    workers: int,
    transport: str = "pickle",
    batch_size: int = 64,
    checkpoint_interval: int = 4,
    max_restarts: int = 8,
    checkpoint_dir: Optional[str] = None,
) -> DifferentialResult:
    """Run clean then injected, and compare canonically.

    The clean run uses the in-process sharded executor (same router and
    merge, no processes to kill) at the same shard count; the injected
    run arms ``spec`` in :data:`FAULTLINE_ENV` for its worker pool and
    runs with checkpointing + supervision enabled.  Factories (not
    values) keep the two runs independent: each builds its own workload
    objects and replays its own stream.
    """
    parse_faultline(spec)  # fail fast on a malformed spec
    clean = ShardedStreamingExecutor(
        list(workload_factory()), workers=0, shards=workers
    ).run(stream_factory())
    previous = os.environ.get(FAULTLINE_ENV)
    owned_dir: Optional[tempfile.TemporaryDirectory] = None
    if checkpoint_dir is None:
        owned_dir = tempfile.TemporaryDirectory(prefix="faultline-ckpt-")
        checkpoint_dir = owned_dir.name
    try:
        os.environ[FAULTLINE_ENV] = spec
        injected = ShardedStreamingExecutor(
            list(workload_factory()),
            workers=workers,
            batch_size=batch_size,
            transport=transport,
            checkpoint_dir=checkpoint_dir,
            checkpoint_interval=checkpoint_interval,
            max_restarts=max_restarts,
        ).run(stream_factory())
        leaked = checkpoint_temp_files(checkpoint_dir)
    finally:
        if previous is None:
            os.environ.pop(FAULTLINE_ENV, None)
        else:
            os.environ[FAULTLINE_ENV] = previous
        if owned_dir is not None:
            owned_dir.cleanup()
    recovery = injected.recovery if isinstance(injected.recovery, RecoveryStats) else None
    return DifferentialResult(
        spec=spec,
        identical=canonical_report(clean) == canonical_report(injected),
        recovery=recovery,
        leaked_temporaries=leaked,
        clean=clean,
        injected=injected,
    )
