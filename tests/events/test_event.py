"""Unit tests for the Event data type."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.events import Attribute, AttributeKind, Event, Schema


class TestEventBasics:
    def test_creation_and_attribute_access(self):
        event = Event("Trade", 10.0, {"price": 99.5, "company": "ACME"})
        assert event.event_type == "Trade"
        assert event.time == 10.0
        assert event["price"] == 99.5
        assert event.get("volume") is None
        assert event.get("volume", 7) == 7
        assert event.has("company")
        assert not event.has("volume")

    def test_negative_time_rejected(self):
        with pytest.raises(SchemaError):
            Event("Trade", -1.0)

    def test_total_order_breaks_ties_by_sequence(self):
        first = Event("A", 5.0)
        second = Event("A", 5.0)
        assert first < second
        assert first <= second
        assert not second < first

    def test_ordering_by_time(self):
        early = Event("A", 1.0)
        late = Event("B", 2.0)
        assert early < late
        assert sorted([late, early]) == [early, late]

    def test_equality_is_identity_like(self):
        event = Event("A", 1.0)
        other = Event("A", 1.0)
        assert event == event
        assert event != other
        assert len({event, other}) == 2

    def test_with_payload_returns_updated_copy(self):
        event = Event("A", 1.0, {"x": 1})
        updated = event.with_payload(y=2)
        assert updated["x"] == 1
        assert updated["y"] == 2
        assert not event.has("y")


class TestEventSchemaValidation:
    def test_create_with_schema_validates(self):
        schema = Schema.of("Trade", price=AttributeKind.FLOAT, company=AttributeKind.STRING)
        event = Event.create("Trade", 1.0, schema=schema, price=10.0, company="ACME")
        assert event["price"] == 10.0

    def test_create_with_wrong_schema_type_rejected(self):
        schema = Schema.of("Trade", price=AttributeKind.FLOAT)
        with pytest.raises(SchemaError):
            Event.create("Quote", 1.0, schema=schema, price=10.0)

    def test_missing_attribute_rejected(self):
        schema = Schema.of("Trade", price=AttributeKind.FLOAT)
        with pytest.raises(SchemaError):
            Event.create("Trade", 1.0, schema=schema)

    def test_wrong_kind_rejected(self):
        schema = Schema.of("Trade", price=AttributeKind.FLOAT)
        with pytest.raises(SchemaError):
            Event.create("Trade", 1.0, schema=schema, price="cheap")

    def test_unknown_attribute_rejected(self):
        schema = Schema.of("Trade", price=AttributeKind.FLOAT)
        with pytest.raises(SchemaError):
            Event.create("Trade", 1.0, schema=schema, price=1.0, bogus=3)


class TestSchema:
    def test_reserved_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema("Trade", (Attribute("time"),))

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Schema("Trade", (Attribute("price"), Attribute("price")))

    def test_attribute_lookup(self):
        schema = Schema.of("Trade", price=AttributeKind.FLOAT)
        assert schema.attribute("price").kind is AttributeKind.FLOAT
        assert schema.has_attribute("price")
        assert not schema.has_attribute("volume")
        with pytest.raises(SchemaError):
            schema.attribute("volume")

    def test_invalid_type_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema("not a name")

    def test_bool_is_not_int(self):
        assert not AttributeKind.INT.validates(True)
        assert AttributeKind.BOOL.validates(True)
        assert AttributeKind.FLOAT.validates(3)
        assert not AttributeKind.FLOAT.validates(True)
