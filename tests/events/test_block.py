"""EventBlock: the columnar in-memory batch format of the hot path.

Pins the design points from the block's contract: empty/single-row blocks,
mixed payload dtypes falling back to object columns, zero-copy slice
aliasing, selection, both wire codecs interoperating with ``EventBatch``,
and a hypothesis round-trip suite proving events -> block -> events
preserves exact types and the ``(time, sequence)`` order.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError, SchemaError
from repro.events import Event, EventBatch, EventBlock, EventBlockBuilder, EventStream
from repro.events import columnar


def make(payloads, type_name="T"):
    return [
        Event(type_name, float(index), payload)
        for index, payload in enumerate(payloads)
    ]


def identical(decoded, originals):
    """Full equality: fields, payload content, and exact payload types."""
    assert decoded == originals  # (type, time, sequence)
    assert [e.payload for e in decoded] == [e.payload for e in originals]
    for left, right in zip(decoded, originals):
        assert [type(v) for v in left.payload.values()] == [
            type(v) for v in right.payload.values()
        ]


class TestEdgeCases:
    def test_empty_block(self):
        block = EventBlock.empty()
        assert len(block) == 0 and not block
        assert block.to_events() == []
        assert list(block) == []
        assert EventBlock.from_events([]).to_events() == []
        assert EventBlock.from_bytes(block.to_bytes()).to_events() == []
        assert block.group_keys(("district",)) == []
        assert block.payload_column("x") == []

    def test_single_event(self):
        events = make([{"v": 1.5, "n": 3}])
        block = EventBlock.from_events(events)
        assert len(block) == 1 and bool(block)
        identical(block.to_events(), events)
        assert block[0] == events[0]
        assert block[-1] == events[0]
        assert block.time_at(0) == 0.0
        assert block.type_at(0) == "T"
        assert block.sequence_at(0) == events[0].sequence
        assert block.payload_at(0) == {"v": 1.5, "n": 3}

    def test_index_out_of_range(self):
        block = EventBlock.from_events(make([{}, {}]))
        with pytest.raises(IndexError):
            block.event_at(2)
        with pytest.raises(IndexError):
            block.event_at(-3)
        with pytest.raises(IndexError):
            block.select([5])

    def test_mixed_dtypes_fall_back_to_object_columns(self):
        values = [4, 4.0, True, "4", None, (1, 2.5), 2**70, -(2**70)]
        events = make([{"x": value} for value in values])
        block = EventBlock.from_events(events)
        identical(block.to_events(), events)
        # ... and through the wire codec, which re-runs dtype selection.
        identical(EventBlock.from_bytes(block.to_bytes()).to_events(), events)
        assert block.payload_column("x") == values

    def test_heterogeneous_shapes_and_key_order(self):
        events = make([{"a": 1.0, "b": 2.0}]) + make([{"b": 3.0, "a": 4.0}]) + make([{}])
        block = EventBlock.from_events(events)
        assert tuple(block.to_events()[0].payload) == ("a", "b")
        assert tuple(block.to_events()[1].payload) == ("b", "a")
        assert block.to_events()[2].payload == {}
        assert block.payload_column("a") == [1.0, 4.0, None]
        assert block.payload_column("a", default=0.0) == [1.0, 4.0, 0.0]

    def test_group_keys_match_event_get(self):
        events = make(
            [{"d": 1, "s": 2.0}, {"d": 2}, {"s": 9.0}, {"d": 1, "s": 4.0}]
        )
        block = EventBlock.from_events(events)
        for attrs in ((), ("d",), ("d", "s"), ("missing",)):
            expected = [tuple(e.get(a) for a in attrs) for e in events]
            assert block.group_keys(attrs) == expected
        # cached: repeated calls return the same list object
        assert block.group_keys(("d",)) is block.group_keys(("d",))

    def test_builder_rejects_negative_time(self):
        builder = EventBlockBuilder()
        with pytest.raises(SchemaError):
            builder.append_row("T", -1.0, {})

    def test_builder_draws_fresh_sequences(self):
        builder = EventBlockBuilder()
        builder.append_row("T", 0.0, {"v": 1})
        builder.append_row("T", 1.0, {"v": 2})
        block = builder.finish()
        first, second = block.to_events()
        assert second.sequence > first.sequence
        assert first < second

    def test_unknown_codec_is_a_clean_error(self):
        with pytest.raises(ExecutionError, match="codec"):
            EventBlock.empty().to_bytes("json")


class TestSlicing:
    def test_slice_aliases_parent_columns(self):
        events = make([{"v": float(i)} for i in range(10)])
        block = EventBlock.from_events(events)
        child = block.slice(2, 8)
        assert len(child) == 6
        # zero-copy: every column is the parent's own container
        assert child.times is block.times
        assert child.sequences is block.sequences
        assert child.type_codes is block.type_codes
        assert child.shape_columns is block.shape_columns
        assert child.row_slots is block.row_slots
        assert (child.start, child.stop) == (2, 8)
        identical(child.to_events(), events[2:8])

    def test_nested_slices_compose(self):
        events = make([{"v": i} for i in range(20)])
        block = EventBlock.from_events(events)
        child = block[4:16]
        grand = child[3:9]
        assert grand.times is block.times
        identical(grand.to_events(), events[7:13])
        assert grand.payload_column("v") == [e.payload["v"] for e in events[7:13]]
        assert grand.group_keys(("v",)) == [(e.payload["v"],) for e in events[7:13]]

    def test_slice_bounds_clamp(self):
        block = EventBlock.from_events(make([{}, {}, {}]))
        assert len(block.slice(-5, 99)) == 3
        assert len(block.slice(2, 1)) == 0
        assert block[1:].to_events() == block.to_events()[1:]

    def test_stepped_slice_gathers(self):
        events = make([{"v": i} for i in range(10)])
        block = EventBlock.from_events(events)
        stepped = block[1:9:3]
        assert stepped.times is not block.times
        identical(stepped.to_events(), events[1:9:3])

    def test_select_gathers_in_given_order(self):
        events = make([{"v": i, "w": float(i)} for i in range(6)])
        block = EventBlock.from_events(events)
        picked = block.select([4, 0, 2])
        identical(picked.to_events(), [events[4], events[0], events[2]])
        # selection from a slice uses block-relative indices
        child = block.slice(2, 6)
        identical(child.select([1, 3]).to_events(), [events[3], events[5]])

    def test_slice_serializes_only_its_rows(self):
        events = make([{"v": float(i)} for i in range(8)])
        block = EventBlock.from_events(events)
        child = block.slice(3, 6)
        for codec in ("columnar", "pickle"):
            identical(
                EventBlock.from_bytes(child.to_bytes(codec)).to_events(),
                events[3:6],
            )


class TestWireInterop:
    def test_from_bytes_accepts_both_codecs(self):
        events = make([{"v": 1.5}, {"v": 2.5}], type_name="A") + make(
            [{"n": 3}], type_name="B"
        )
        for codec in ("pickle", "columnar"):
            data = EventBatch.from_events(events).to_bytes(codec=codec)
            identical(EventBlock.from_bytes(data).to_events(), events)

    def test_batch_reads_block_bytes(self):
        events = make([{"v": 1.5}, {"n": 2}])
        block = EventBlock.from_events(events)
        for codec in ("pickle", "columnar"):
            identical(EventBatch.from_bytes(block.to_bytes(codec)).events(), events)

    def test_from_bytes_rejects_garbage(self):
        with pytest.raises(ExecutionError, match="magic"):
            EventBlock.from_bytes(b"XXXX" + bytes(32))
        with pytest.raises(ExecutionError):
            EventBlock.from_bytes(b"")

    def test_memoryview_input(self):
        events = make([{"v": 1.0}])
        data = memoryview(EventBlock.from_events(events).to_bytes())
        identical(EventBlock.from_bytes(data).to_events(), events)

    def test_stream_to_block(self):
        events = make([{"v": i} for i in range(5)])
        stream = EventStream(events, name="s")
        identical(stream.to_block().to_events(), events)


_scalar_values = st.one_of(
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False, allow_infinity=True, width=64),
    st.booleans(),
    st.text(max_size=12),
    st.none(),
)
_payload_values = st.one_of(
    _scalar_values,
    st.tuples(_scalar_values, _scalar_values),
    st.lists(st.integers(min_value=-1000, max_value=1000), max_size=3).map(tuple),
)
_payloads = st.dictionaries(st.text(max_size=16), _payload_values, max_size=5)


@st.composite
def _fuzz_events(draw):
    count = draw(st.integers(min_value=0, max_value=40))
    events = []
    clock = 0.0
    for _ in range(count):
        clock += draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
        events.append(
            Event(
                draw(st.text(min_size=1, max_size=8)),
                clock,
                draw(_payloads),
            )
        )
    return events


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(events=_fuzz_events())
    def test_block_round_trip_preserves_types_and_order(self, events):
        block = EventBlock.from_events(events)
        identical(block.to_events(), events)
        # (time, sequence) order is preserved exactly
        decoded = block.to_events()
        assert [(e.time, e.sequence) for e in decoded] == [
            (e.time, e.sequence) for e in events
        ]
        assert sorted(decoded) == decoded

    @settings(max_examples=60, deadline=None)
    @given(events=_fuzz_events())
    def test_wire_round_trip_through_both_codecs(self, events):
        block = EventBlock.from_events(events)
        for codec in ("columnar", "pickle"):
            identical(EventBlock.from_bytes(block.to_bytes(codec)).to_events(), events)
        # columnar wire from the canonical encoder parses into a block too
        data = columnar.encode_events(events, columnar.CODEC_COLUMNAR)
        identical(EventBlock.from_bytes(data).to_events(), events)

    @settings(max_examples=30, deadline=None)
    @given(events=_fuzz_events(), cut=st.integers(min_value=0, max_value=40))
    def test_slices_agree_with_event_lists(self, events, cut):
        block = EventBlock.from_events(events)
        lo = min(cut, len(events))
        identical(block.slice(0, lo).to_events(), events[:lo])
        identical(block.slice(lo, len(events)).to_events(), events[lo:])
