"""Unit tests for EventStream and time helpers."""

from __future__ import annotations

import pytest

from repro.errors import StreamError, WindowError
from repro.events import Event, EventStream, gcd_of_intervals, merge_streams
from repro.events.time import pane_bounds, pane_index


class TestEventStream:
    def test_append_preserves_order(self):
        stream = EventStream()
        stream.append(Event("A", 1.0))
        stream.append(Event("B", 2.0))
        assert len(stream) == 2
        assert [e.event_type for e in stream] == ["A", "B"]

    def test_out_of_order_append_rejected(self):
        stream = EventStream([Event("A", 5.0)])
        with pytest.raises(StreamError):
            stream.append(Event("B", 4.0))

    def test_same_timestamp_allowed(self):
        stream = EventStream([Event("A", 5.0), Event("B", 5.0)])
        assert len(stream) == 2

    def test_equal_time_regressing_sequence_rejected(self):
        # The boundary enforces the full (time, sequence) total order, not
        # just time: an equal-time event with a smaller sequence would slip
        # past a time-only check and blow up in the engines instead.
        stream = EventStream([Event("A", 5.0, sequence=10)])
        with pytest.raises(StreamError, match="would precede it in stream order"):
            stream.append(Event("B", 5.0, sequence=3))

    def test_equal_time_nondecreasing_sequence_allowed(self):
        stream = EventStream([Event("A", 5.0, sequence=10)])
        stream.append(Event("B", 5.0, sequence=10))
        stream.append(Event("C", 5.0, sequence=11))
        assert len(stream) == 3

    def test_rejection_message_names_the_arriving_event(self):
        # Regression: the pre-reorder message had the two events swapped,
        # blaming the already-accepted event for the regression.
        stream = EventStream([Event("A", 5.0, sequence=1)])
        with pytest.raises(StreamError, match=r"time=4\.0.*arrived after.*time=5\.0"):
            stream.append(Event("B", 4.0, sequence=2))

    def test_slicing_returns_stream(self):
        stream = EventStream([Event("A", 1.0), Event("B", 2.0), Event("C", 3.0)])
        sliced = stream[1:]
        assert isinstance(sliced, EventStream)
        assert len(sliced) == 2
        assert stream[0].event_type == "A"

    def test_between_half_open(self):
        events = [Event("A", float(t)) for t in range(5)]
        stream = EventStream(events)
        window = stream.between(1.0, 3.0)
        assert [e.time for e in window] == [1.0, 2.0]

    def test_between_stays_current_across_appends(self):
        # The timestamp array is maintained in lock-step with appends, so
        # slicing after further appends must see the new events.
        stream = EventStream([Event("A", 0.0), Event("A", 1.0)])
        assert len(stream.between(0.0, 10.0)) == 2
        stream.append(Event("B", 2.0))
        assert len(stream.between(0.0, 10.0)) == 3
        assert [e.time for e in stream.between(1.0, 3.0)] == [1.0, 2.0]
        assert list(stream.times) == [0.0, 1.0, 2.0]

    def test_index_at_binary_search(self):
        stream = EventStream([Event("A", 0.0), Event("A", 2.0), Event("A", 2.0), Event("A", 5.0)])
        assert stream.index_at(0.0) == 0
        assert stream.index_at(2.0) == 1
        assert stream.index_at(3.0) == 3
        assert stream.index_at(99.0) == 4

    def test_of_type_and_filter(self):
        stream = EventStream([Event("A", 1.0), Event("B", 2.0), Event("A", 3.0)])
        assert len(stream.of_type("A")) == 2
        assert len(stream.filter(lambda e: e.time > 1.5)) == 2

    def test_statistics(self):
        stream = EventStream([Event("A", 0.0), Event("B", 30.0), Event("A", 60.0)])
        stats = stream.statistics()
        assert stats.count == 3
        assert stats.duration == 60.0
        assert stats.events_per_second == pytest.approx(0.05)
        assert stats.events_per_minute == pytest.approx(3.0)
        assert stats.events_per_type == {"A": 2, "B": 1}

    def test_statistics_empty(self):
        stats = EventStream().statistics()
        assert stats.count == 0
        assert stats.events_per_second == 0.0

    def test_bounds(self):
        stream = EventStream([Event("A", 2.0), Event("B", 9.0)])
        assert stream.start_time == 2.0
        assert stream.end_time == 9.0
        assert EventStream().start_time is None


class TestByTypeIndex:
    def test_index_built_alongside_appends(self):
        stream = EventStream([Event("A", 0.0), Event("B", 1.0)])
        stream.append(Event("A", 2.0))
        assert [e.time for e in stream.events_of_type("A")] == [0.0, 2.0]
        assert [e.time for e in stream.events_of_type("B")] == [1.0]
        assert stream.events_of_type("C") == ()
        assert set(stream.by_type) == {"A", "B"}

    def test_of_types_merges_in_stream_order(self):
        stream = EventStream(
            [Event("A", 0.0), Event("B", 1.0), Event("C", 1.0), Event("A", 2.0), Event("B", 3.0)]
        )
        selected = stream.of_types({"A", "B"})
        assert [e.event_type for e in selected] == ["A", "B", "A", "B"]
        assert [e.time for e in selected] == [0.0, 1.0, 2.0, 3.0]
        assert stream.of_types({"Z"}) == []
        # Single-type selection is a direct index read.
        assert [e.time for e in stream.of_types(["A"])] == [0.0, 2.0]

    def test_of_type_uses_the_index(self):
        stream = EventStream([Event("A", 0.0), Event("B", 1.0), Event("A", 2.0)])
        narrowed = stream.of_type("A")
        assert isinstance(narrowed, EventStream)
        assert [e.time for e in narrowed] == [0.0, 2.0]


class TestMergeStreams:
    def test_merge_orders_by_time(self):
        left = EventStream([Event("A", 1.0), Event("A", 3.0)])
        right = EventStream([Event("B", 2.0), Event("B", 4.0)])
        merged = merge_streams(left, right)
        assert [e.event_type for e in merged] == ["A", "B", "A", "B"]

    def test_merge_empty(self):
        assert len(merge_streams(EventStream(), EventStream())) == 0


class TestTimeHelpers:
    def test_gcd_of_intervals(self):
        assert gcd_of_intervals([600.0, 900.0, 300.0]) == pytest.approx(300.0)
        assert gcd_of_intervals([10.0]) == pytest.approx(10.0)
        assert gcd_of_intervals([0.5, 0.75]) == pytest.approx(0.25)

    def test_gcd_rejects_bad_input(self):
        with pytest.raises(WindowError):
            gcd_of_intervals([])
        with pytest.raises(WindowError):
            gcd_of_intervals([5.0, 0.0])

    def test_pane_index_and_bounds(self):
        assert pane_index(0.0, 5.0) == 0
        assert pane_index(4.999, 5.0) == 0
        assert pane_index(5.0, 5.0) == 1
        assert pane_bounds(2, 5.0) == (10.0, 15.0)
        with pytest.raises(WindowError):
            pane_index(1.0, 0.0)
