"""Columnar wire codec: framing, typed columns, exact-type round trips.

The randomized identity property over both codecs lives in
``tests/runtime/test_sharding.py`` (the EventBatch fuzz); this module pins
the deliberate design points — the versioned header's failure modes, the
exact-type column classification and the object-column fallback.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ExecutionError
from repro.events import Event, EventBatch
from repro.events import columnar


def make(payloads, type_name="T"):
    return [
        Event(type_name, float(index), payload)
        for index, payload in enumerate(payloads)
    ]


def round_trip(events, codec="columnar"):
    data = EventBatch.from_events(events).to_bytes(codec=codec)
    return EventBatch.from_bytes(data).events()


class TestFraming:
    def test_header_magic_and_codec_byte(self):
        data = EventBatch.from_events(make([{}])).to_bytes(codec="columnar")
        assert data[:4] == columnar.MAGIC
        assert data[4] == columnar.CODEC_COLUMNAR
        pickled = EventBatch.from_events(make([{}])).to_bytes()
        assert pickled[:4] == columnar.MAGIC
        assert pickled[4] == columnar.CODEC_PICKLE

    def test_wrong_magic_is_a_clean_error(self):
        with pytest.raises(ExecutionError, match="magic"):
            EventBatch.from_bytes(b"XXXX" + bytes(64))

    def test_legacy_unframed_pickle_is_a_clean_error(self):
        legacy = pickle.dumps(("T",), protocol=pickle.HIGHEST_PROTOCOL)
        with pytest.raises(ExecutionError, match="magic"):
            EventBatch.from_bytes(legacy)

    def test_unknown_codec_version_is_a_clean_error(self):
        data = bytearray(EventBatch.from_events(make([{}])).to_bytes())
        data[4] = 0x7F
        with pytest.raises(ExecutionError, match="codec"):
            EventBatch.from_bytes(bytes(data))

    def test_truncated_buffer_is_a_clean_error(self):
        data = EventBatch.from_events(
            make([{"v": 1.0, "w": 2}, {"v": 3.5, "w": 4}])
        ).to_bytes(codec="columnar")
        for cut in (0, 3, 5, len(data) // 2, len(data) - 1):
            with pytest.raises(ExecutionError):
                EventBatch.from_bytes(data[:cut])

    def test_unknown_codec_name_on_encode(self):
        with pytest.raises(ExecutionError, match="codec"):
            EventBatch.from_events(make([{}])).to_bytes(codec="json")


class TestTypedColumns:
    def test_exact_type_preservation_per_column(self):
        # One key carrying a uniform dtype per batch → typed column; the
        # decoded values must come back with type() intact, not coerced.
        events = make([{"v": 1.0}, {"v": -0.5}]) + make([{"v": 2.5}])
        assert [e.payload["v"] for e in round_trip(events)] == [1.0, -0.5, 2.5]
        events = make([{"n": 4}, {"n": -7}])
        decoded = [e.payload["n"] for e in round_trip(events)]
        assert decoded == [4, -7] and all(type(v) is int for v in decoded)
        events = make([{"b": True}, {"b": False}])
        decoded = [e.payload["b"] for e in round_trip(events)]
        assert decoded == [True, False] and all(type(v) is bool for v in decoded)

    def test_mixed_dtypes_fall_back_to_object_column(self):
        # int/float/bool/str mixed under one key cannot share a fixed
        # dtype; the object column must keep each value's exact type.
        values = [4, 4.0, True, "4", None, (1, 2.5), 2**70, -(2**70)]
        events = make([{"x": value} for value in values])
        decoded = [e.payload["x"] for e in round_trip(events)]
        assert decoded == values
        assert [type(v) for v in decoded] == [type(v) for v in values]

    def test_negative_zero_and_int64_boundaries(self):
        values = [-0.0, float(2**53), -(2**63), 2**63 - 1, 2**63]
        events = make([{"x": value} for value in values])
        decoded = [e.payload["x"] for e in round_trip(events)]
        assert [type(v) for v in decoded] == [type(v) for v in values]
        assert str(decoded[0]) == "-0.0"
        assert decoded[1:] == values[1:]

    def test_key_order_and_heterogeneous_shapes(self):
        events = make([{"a": 1.0, "b": 2.0}]) + make([{"b": 3.0, "a": 4.0}])
        decoded = round_trip(events)
        assert tuple(decoded[0].payload) == ("a", "b")
        assert tuple(decoded[1].payload) == ("b", "a")

    def test_unicode_types_and_keys(self):
        events = make([{"clé": "värde", "鍵": 1.0}], type_name="Tÿpe")
        decoded = round_trip(events)
        assert decoded[0].event_type == "Tÿpe"
        assert decoded[0].payload == {"clé": "värde", "鍵": 1.0}

    def test_time_and_sequence_survive_exactly(self):
        events = [
            Event("T", 0.1 + 0.2, {"v": 1.0}),
            Event("T", 1e308, {"v": 2.0}),
        ]
        decoded = round_trip(events)
        assert [e.time for e in decoded] == [e.time for e in events]
        assert [e.sequence for e in decoded] == [e.sequence for e in events]

    def test_empty_batch_and_empty_payloads(self):
        assert round_trip([]) == []
        decoded = round_trip(make([{}, {}]))
        assert [e.payload for e in decoded] == [{}, {}]

    def test_decode_accepts_memoryview(self):
        events = make([{"v": 1.5}, {"v": 2.5}])
        data = EventBatch.from_events(events).to_bytes(codec="columnar")
        assert columnar.decode_events(memoryview(data)) == events

    def test_encode_decode_events_helpers_dispatch(self):
        events = make([{"v": 1.5}])
        for codec in (columnar.CODEC_PICKLE, columnar.CODEC_COLUMNAR):
            data = columnar.encode_events(events, codec)
            decoded = columnar.decode_events(data)
            assert decoded == events
            assert decoded[0].payload == events[0].payload
