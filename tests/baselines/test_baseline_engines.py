"""Unit tests for the brute-force oracle, two-step and SHARON-style baselines."""

from __future__ import annotations

import pytest

from repro.baselines import BruteForceOracle, FlatSequenceEngine, TwoStepEngine, enumerate_trends
from repro.errors import ExecutionError
from repro.events import Event
from repro.greta import GretaEngine
from repro.query import Query, count_events, count_trends, kleene, min_of, seq, sum_of
from tests.conftest import make_events


class TestTrendEnumeration:
    def test_enumerates_all_subsets_of_kleene(self):
        events = make_events("A B B")
        query = Query.build(seq("A", kleene("B")), name="bf_q1")
        trends = list(enumerate_trends(query, events))
        assert len(trends) == 3
        lengths = sorted(len(trend) for trend in trends)
        assert lengths == [2, 2, 3]

    def test_trends_respect_order(self):
        events = [Event("B", 0.0), Event("A", 1.0)]
        query = Query.build(seq("A", kleene("B")), name="bf_q2")
        assert list(enumerate_trends(query, events)) == []


class TestBruteForceOracle:
    def test_matches_greta_on_figure4(self, ab_query, cb_query, figure4_events):
        oracle = BruteForceOracle().evaluate([ab_query, cb_query], figure4_events)
        greta = GretaEngine().evaluate([ab_query, cb_query], figure4_events)
        assert oracle == pytest.approx(greta)

    def test_partition_size_guard(self):
        oracle = BruteForceOracle(max_events=3)
        oracle.start([Query.build(seq("A", kleene("B")), name="bf_q3")])
        for index in range(3):
            oracle.process(Event("B", float(index)))
        with pytest.raises(ExecutionError):
            oracle.process(Event("B", 4.0))

    def test_lifecycle_guards(self):
        oracle = BruteForceOracle()
        with pytest.raises(ExecutionError):
            oracle.process(Event("A", 1.0))
        with pytest.raises(ExecutionError):
            oracle.results()


class TestTwoStepEngine:
    def test_matches_oracle(self, ab_query, cb_query, figure4_events):
        two_step = TwoStepEngine().evaluate([ab_query, cb_query], figure4_events)
        oracle = BruteForceOracle().evaluate([ab_query, cb_query], figure4_events)
        assert two_step == pytest.approx(oracle)

    def test_construction_shared_for_identical_patterns(self, figure4_events):
        q1 = Query.build(seq("A", kleene("B")), name="ts_q1")
        q2 = Query.build(seq("A", kleene("B")), aggregate=count_events("B"), name="ts_q2")
        engine = TwoStepEngine()
        engine.evaluate([q1, q2], figure4_events)
        shared_ops = engine.operations()
        engine_single = TwoStepEngine()
        engine_single.evaluate([q1], figure4_events)
        assert shared_ops == engine_single.operations()

    def test_memory_counts_trends(self, ab_query, figure4_events):
        engine = TwoStepEngine()
        engine.evaluate([ab_query], figure4_events)
        # 2 A starters x (2^4 - 1) B subsets = 30 trends + 7 events + 1 result.
        assert engine.memory_units() == 30 + 7 + 1


class TestFlatSequenceEngine:
    def test_matches_oracle_without_edge_predicates(self, ab_query, cb_query, figure4_events):
        flat = FlatSequenceEngine().evaluate([ab_query, cb_query], figure4_events)
        oracle = BruteForceOracle().evaluate([ab_query, cb_query], figure4_events)
        assert flat == pytest.approx(oracle)

    def test_sum_aggregate(self):
        events = make_events("A B B", b={"v": 2.0})
        query = Query.build(seq("A", kleene("B")), aggregate=sum_of("B", "v"), name="fs_sum")
        flat = FlatSequenceEngine().evaluate([query], events)
        oracle = BruteForceOracle().evaluate([query], events)
        assert flat == pytest.approx(oracle)

    def test_fixed_budget_undercounts_long_trends(self):
        events = make_events("A B B B")
        query = Query.build(seq("A", kleene("B")), name="fs_budget")
        exact = FlatSequenceEngine().evaluate([query], events)
        capped = FlatSequenceEngine(kleene_budget=1).evaluate([query], events)
        assert capped[query.name] < exact[query.name]

    def test_min_max_rejected(self):
        query = Query.build(seq("A", kleene("B")), aggregate=min_of("B", "v"), name="fs_min")
        engine = FlatSequenceEngine()
        with pytest.raises(ExecutionError):
            engine.start([query])

    def test_memory_grows_with_flattening(self, figure4_events):
        q1 = Query.build(seq("A", kleene("B")), name="fs_mem")
        engine = FlatSequenceEngine()
        engine.evaluate([q1], figure4_events)
        flat_memory = engine.memory_units()
        greta = GretaEngine()
        greta.evaluate([q1], figure4_events)
        assert flat_memory > 0
        assert engine.operations() > 0
