"""Perf-smoke digest properties and the benchmark trajectory renderer."""

from __future__ import annotations

import math
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import trend
from perf_smoke import result_digest


class TestResultDigest:
    def test_order_independent(self):
        totals = {"q1": 1.5, "q2": -2.25, "q3": 1e36}
        reordered = dict(reversed(list(totals.items())))
        assert result_digest(totals) == result_digest(reordered)

    def test_single_ulp_changes_digest(self):
        # The float-sum checksum this replaced could not see last-ulp
        # drift without a tolerance; the digest must see every bit.
        value = 1.918063337094774e36
        nudged = math.nextafter(value, math.inf)
        assert result_digest({"q": value}) != result_digest({"q": nudged})

    def test_name_sensitive_and_64_bit(self):
        assert result_digest({"a": 1.0}) != result_digest({"b": 1.0})
        assert 0 <= result_digest({"a": 1.0, "b": 2.0}) < 2**64

    def test_negative_zero_distinct(self):
        # Bit-pattern hashing: -0.0 == 0.0 compares equal but is a
        # different result, and the digest distinguishes them.
        assert result_digest({"q": 0.0}) != result_digest({"q": -0.0})


class TestTrajectoryTable:
    def test_checked_in_table_is_current(self):
        # Same check CI runs: the doc must be regenerated whenever a
        # BENCH_PR*.json changes.
        assert trend.DOC_PATH.read_text() == trend.render()

    def test_check_mode_exit_codes(self, monkeypatch, tmp_path):
        assert trend.main(["--check"]) == 0
        stale = tmp_path / "BENCH_TRAJECTORY.md"
        stale.write_text("out of date\n")
        monkeypatch.setattr(trend, "DOC_PATH", stale)
        assert trend.main(["--check"]) == 1

    def test_render_covers_every_recorded_file(self):
        rendered = trend.render()
        for number, _ in trend.bench_files():
            assert f"| {number} |" in rendered
        # The PR 9 headline is present.
        assert "speedup_block_over_per_event" in rendered
