"""Tests for the benchmark harness: workloads, runner, reporting, experiments."""

from __future__ import annotations

import pytest

from repro.bench import (
    default_engines,
    diverse_stock_workload,
    format_table,
    kleene_sharing_workload,
    nyc_taxi_workload,
    run_comparison,
    smart_home_workload,
)
from repro.bench.fig9 import figure9_events_sweep
from repro.bench.fig12 import figure12_events_sweep
from repro.bench.overhead import measure_overhead
from repro.bench.reporting import ExperimentRow, rows_to_csv, speedup
from repro.bench.runner import dynamic_vs_static_engines
from repro.bench.table1 import format_table1, table1_features
from repro.bench.workloads import BenchmarkError
from repro.datasets import RidesharingGenerator
from repro.query import Window
from repro.template import analyze_workload


class TestWorkloadGenerators:
    def test_kleene_sharing_workload_is_fully_sharable(self):
        workload = kleene_sharing_workload(10, kleene_type="Travel", window=Window.minutes(5))
        assert len(workload) == 10
        analysis = analyze_workload(workload)
        assert len(analysis.groups) == 1
        assert analysis.groups[0].shared_kleene_types == {"Travel"}

    def test_dataset_specific_workloads(self):
        assert len(nyc_taxi_workload(6)) == 6
        assert len(smart_home_workload(6)) == 6
        assert all("Load" in q.kleene_types() for q in smart_home_workload(4))

    def test_diverse_workload_mixes_clauses(self):
        workload = diverse_stock_workload(24)
        aggregates = {query.aggregate.kind for query in workload}
        windows = {query.window.size for query in workload}
        assert len(aggregates) >= 4
        assert len(windows) >= 2
        assert any(not query.predicates.is_empty() for query in workload)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(BenchmarkError):
            kleene_sharing_workload(0)
        with pytest.raises(BenchmarkError):
            diverse_stock_workload(0)


class TestRunnerAndReporting:
    def test_run_comparison_produces_one_row_per_engine(self):
        workload = kleene_sharing_workload(3, window=Window.minutes(1), name="bench-test")
        stream = RidesharingGenerator(events_per_minute=60, seed=3).generate(30.0)
        rows = run_comparison("unit", "events/min", 60, workload, stream, default_engines())
        assert {row.approach for row in rows} == {
            "hamlet",
            "greta",
            "mcep-two-step",
            "sharon-flat",
        }
        for row in rows:
            assert row.latency_seconds >= 0.0
            assert row.memory_units > 0
        hamlet_row = next(row for row in rows if row.approach == "hamlet")
        assert "shared_fraction" in hamlet_row.extra

    def test_format_table_and_csv(self):
        rows = [
            ExperimentRow("e", "p", 1.0, "hamlet", 0.1, 100.0, 5.0),
            ExperimentRow("e", "p", 1.0, "greta", 0.2, 50.0, 10.0),
        ]
        table = format_table(rows)
        assert "hamlet" in table and "greta" in table
        csv = rows_to_csv(rows)
        assert csv.count("\n") == 3
        ratios = speedup(rows, baseline="greta", target="hamlet")
        assert ratios[1.0] == pytest.approx(2.0)

    def test_dynamic_vs_static_engine_specs(self):
        names = {spec.name for spec in dynamic_vs_static_engines()}
        assert names == {"hamlet-dynamic", "hamlet-static", "hamlet-non-shared"}


class TestExperiments:
    def test_figure9_smoke(self):
        rows = figure9_events_sweep(events_per_minute_values=(60,), num_queries=3)
        approaches = {row.approach for row in rows}
        assert "hamlet" in approaches and "mcep-two-step" in approaches

    def test_figure12_smoke(self):
        rows = figure12_events_sweep(events_per_minute_values=(100,), num_queries=6)
        approaches = {row.approach for row in rows}
        assert {"hamlet-dynamic", "hamlet-static"} <= approaches

    def test_overhead_report(self):
        report = measure_overhead(num_queries=6, events_per_minute=100, duration_seconds=60.0)
        assert report.decisions >= 0
        assert 0.0 <= report.shared_fraction <= 1.0
        assert 0.0 <= report.decision_fraction <= 1.0
        assert report.workload_analysis_seconds < 1.0

    def test_table1_matrix(self):
        features = {row.approach: row for row in table1_features()}
        assert features["hamlet"].sharing_decisions == "dynamic"
        assert not features["sharon-flat"].kleene_closure
        assert not features["mcep-two-step"].online_aggregation
        assert features["greta"].sharing_decisions == "not shared"
        text = format_table1()
        assert "hamlet" in text
