"""Unit tests for the GRETA engine (non-shared online trend aggregation)."""

from __future__ import annotations

import pytest

from repro.baselines import BruteForceOracle
from repro.errors import ExecutionError
from repro.events import Event
from repro.greta import GretaEngine
from repro.query import (
    Query,
    Window,
    avg,
    count_events,
    count_trends,
    kleene,
    max_of,
    min_of,
    parse_pattern,
    same_attributes,
    seq,
    sum_of,
)
from repro.query.predicates import attr_less
from tests.conftest import make_events


def _eval(queries, events):
    greta = GretaEngine().evaluate(queries, events)
    oracle = BruteForceOracle().evaluate(queries, events)
    return greta, oracle


class TestPaperExample4:
    def test_counts_of_b3(self, ab_query, cb_query, figure4_events):
        """Example 4: count(b3, q1) = 2 and count(b3, q2) = 1."""
        engine = GretaEngine()
        engine.start([ab_query, cb_query])
        for event in figure4_events[:4]:  # a1, a2, c1, b3
            engine.process(event)
        b3 = figure4_events[3]
        graph_q1 = engine.graph_of(ab_query)
        graph_q2 = engine.graph_of(cb_query)
        assert graph_q1.state_of(b3).count == 2.0
        assert graph_q2.state_of(b3).count == 1.0

    def test_full_figure4_counts(self, ab_query, cb_query, figure4_events):
        """Counts over the whole Figure 4 stream match exhaustive enumeration."""
        greta, oracle = _eval([ab_query, cb_query], figure4_events)
        assert greta == pytest.approx(oracle)
        # With 2 A events, 1 C event and 4 B events every non-empty subset of
        # B events forms a trend per A (or C) event: (2^4 - 1) * #starters.
        assert greta[ab_query.name] == 30.0
        assert greta[cb_query.name] == 15.0


class TestAggregates:
    def test_count_events_and_sum(self):
        events = make_events("A B B", b={"v": 2.0})
        q_count = Query.build(seq("A", kleene("B")), aggregate=count_events("B"), name="g_ce")
        q_sum = Query.build(seq("A", kleene("B")), aggregate=sum_of("B", "v"), name="g_sum")
        greta, oracle = _eval([q_count, q_sum], events)
        assert greta == pytest.approx(oracle)
        # Trends: (a,b1), (a,b2), (a,b1,b2) -> 4 B occurrences, sum 8.
        assert greta["g_ce"] == 4.0
        assert greta["g_sum"] == 8.0

    def test_avg(self):
        events = [
            Event("A", 0.0),
            Event("B", 1.0, {"v": 1.0}),
            Event("B", 2.0, {"v": 3.0}),
        ]
        query = Query.build(seq("A", kleene("B")), aggregate=avg("B", "v"), name="g_avg")
        greta, oracle = _eval([query], events)
        assert greta["g_avg"] == pytest.approx(oracle["g_avg"])
        # Occurrences: b1, b2, b1+b2 -> values 1, 3, 1, 3 -> avg 2.
        assert greta["g_avg"] == pytest.approx(2.0)

    def test_min_max(self):
        events = [
            Event("A", 0.0),
            Event("B", 1.0, {"v": 5.0}),
            Event("B", 2.0, {"v": 2.0}),
        ]
        q_min = Query.build(seq("A", kleene("B")), aggregate=min_of("B", "v"), name="g_min")
        q_max = Query.build(seq("A", kleene("B")), aggregate=max_of("B", "v"), name="g_max")
        greta, oracle = _eval([q_min, q_max], events)
        assert greta == pytest.approx(oracle)
        assert greta["g_min"] == 2.0
        assert greta["g_max"] == 5.0

    def test_empty_partition_yields_zero(self):
        query = Query.build(seq("A", kleene("B")), name="g_empty")
        assert GretaEngine().evaluate([query], []) == {"g_empty": 0.0}


class TestPredicates:
    def test_local_predicate_filters_events(self):
        events = make_events("A B B")
        events[2] = Event("B", 2.0, {"v": 100.0})
        events[1] = Event("B", 1.0, {"v": 1.0})
        query = Query.build(
            seq("A", kleene("B")),
            predicates=[attr_less("v", 10.0, event_type="B")],
            name="g_local",
        )
        greta, oracle = _eval([query], events)
        assert greta == pytest.approx(oracle)
        assert greta["g_local"] == 1.0  # only the slow B forms a trend

    def test_edge_predicate_restricts_adjacency(self):
        events = [
            Event("A", 0.0, {"d": 1}),
            Event("B", 1.0, {"d": 1}),
            Event("B", 2.0, {"d": 2}),
        ]
        query = Query.build(
            seq("A", kleene("B")),
            predicates=[same_attributes("d")],
            name="g_edge",
        )
        greta, oracle = _eval([query], events)
        assert greta == pytest.approx(oracle)
        # Trends: (a, b1) only — b2 has a different driver.
        assert greta["g_edge"] == 1.0

    def test_negation_blocks_connections(self):
        events = [
            Event("A", 0.0),
            Event("X", 1.0),
            Event("B", 2.0),
        ]
        query = Query.build(parse_pattern("SEQ(A, NOT X, B+)"), name="g_neg")
        greta, oracle = _eval([query], events)
        assert greta == pytest.approx(oracle)
        assert greta["g_neg"] == 0.0

    def test_trailing_negation_cancels_trends(self):
        events = [
            Event("R", 0.0),
            Event("T", 1.0),
            Event("T", 2.0),
            Event("P", 3.0),
        ]
        query = Query.build(parse_pattern("SEQ(R, T+, NOT P)"), name="g_trail")
        greta, oracle = _eval([query], events)
        assert greta == pytest.approx(oracle)
        assert greta["g_trail"] == 0.0

    def test_trailing_negation_partial(self):
        events = [
            Event("R", 0.0),
            Event("T", 1.0),
            Event("P", 2.0),
            Event("T", 3.0),
        ]
        query = Query.build(parse_pattern("SEQ(R, T+, NOT P)"), name="g_trail2")
        greta, oracle = _eval([query], events)
        assert greta == pytest.approx(oracle)
        # Only trends ending at the last T (after the pickup) survive:
        # (r, t1, t2) and (r, t2).
        assert greta["g_trail2"] == 2.0


class TestNestedKleene:
    def test_nested_kleene_counts(self):
        events = make_events("A B A B")
        query = Query.build(parse_pattern("(SEQ(A, B+))+"), name="g_nested")
        greta, oracle = _eval([query], events)
        assert greta == pytest.approx(oracle)


class TestEngineLifecycle:
    def test_process_before_start_raises(self):
        engine = GretaEngine()
        with pytest.raises(ExecutionError):
            engine.process(Event("A", 1.0))
        with pytest.raises(ExecutionError):
            engine.results()
        with pytest.raises(ExecutionError):
            engine.start([])

    def test_memory_and_operations_grow(self, ab_query, cb_query, figure4_events):
        engine = GretaEngine()
        engine.start([ab_query, cb_query])
        baseline_memory = engine.memory_units()
        for event in figure4_events:
            engine.process(event)
        assert engine.memory_units() > baseline_memory
        assert engine.operations() > 0

    def test_irrelevant_events_ignored(self, ab_query):
        engine = GretaEngine()
        engine.start([ab_query])
        engine.process(Event("Z", 1.0))
        assert engine.results() == {ab_query.name: 0.0}
