"""Unit tests for the dataset simulators."""

from __future__ import annotations

import pytest

from repro.datasets import (
    BurstModel,
    NycTaxiGenerator,
    RidesharingGenerator,
    SmartHomeGenerator,
    StockGenerator,
)
from repro.datasets.nyc_taxi import NYC_TAXI_TYPES, nyc_taxi_schemas
from repro.datasets.ridesharing import RIDESHARING_TYPES, ridesharing_schemas
from repro.datasets.smart_home import SMART_HOME_TYPES, smart_home_schemas
from repro.datasets.stock import STOCK_TYPES, stock_schemas
from repro.errors import DatasetError

GENERATORS = [
    (RidesharingGenerator, RIDESHARING_TYPES, ridesharing_schemas),
    (NycTaxiGenerator, NYC_TAXI_TYPES, nyc_taxi_schemas),
    (SmartHomeGenerator, SMART_HOME_TYPES, smart_home_schemas),
    (StockGenerator, STOCK_TYPES, stock_schemas),
]


class TestAllGenerators:
    @pytest.mark.parametrize("generator_class, type_names, schemas", GENERATORS)
    def test_events_conform_to_schema(self, generator_class, type_names, schemas):
        generator = generator_class(events_per_minute=600, seed=3)
        stream = generator.generate(10.0)
        registry = schemas()
        assert len(stream) > 0
        for event in stream:
            assert event.event_type in type_names
            registry.get(event.event_type).validate(event.payload)

    @pytest.mark.parametrize("generator_class, type_names, schemas", GENERATORS)
    def test_deterministic_given_seed(self, generator_class, type_names, schemas):
        first = generator_class(events_per_minute=300, seed=5).generate(10.0)
        second = generator_class(events_per_minute=300, seed=5).generate(10.0)
        assert [(e.event_type, e.time) for e in first] == [(e.event_type, e.time) for e in second]
        different = generator_class(events_per_minute=300, seed=6).generate(10.0)
        assert [(e.event_type, e.time) for e in first] != [
            (e.event_type, e.time) for e in different
        ]

    @pytest.mark.parametrize("generator_class, type_names, schemas", GENERATORS)
    def test_event_count_tracks_rate(self, generator_class, type_names, schemas):
        generator = generator_class(events_per_minute=1200, seed=3)
        stream = generator.generate(30.0)
        assert len(stream) == pytest.approx(600, rel=0.05)
        assert stream.start_time >= 0.0
        assert stream.end_time <= 30.0 * 2  # spacing jitter stays bounded

    @pytest.mark.parametrize("generator_class, type_names, schemas", GENERATORS)
    def test_generate_events_helper(self, generator_class, type_names, schemas):
        stream = generator_class(events_per_minute=600, seed=4).generate_events(100)
        assert len(stream) == pytest.approx(100, rel=0.1)


class TestBurstiness:
    def test_burst_model_validation(self):
        with pytest.raises(DatasetError):
            BurstModel(mean_burst_length=0.5)
        with pytest.raises(DatasetError):
            BurstModel(burstiness=1.5)

    def test_bursty_streams_have_longer_runs(self):
        smooth = RidesharingGenerator(
            events_per_minute=3000, seed=9, burst_model=BurstModel(mean_burst_length=1.0)
        ).generate(20.0)
        bursty = RidesharingGenerator(
            events_per_minute=3000, seed=9, burst_model=BurstModel(mean_burst_length=25.0)
        ).generate(20.0)

        def average_run_length(stream):
            runs, current = [], 1
            events = list(stream)
            for previous, current_event in zip(events, events[1:]):
                if current_event.event_type == previous.event_type:
                    current += 1
                else:
                    runs.append(current)
                    current = 1
            runs.append(current)
            return sum(runs) / len(runs)

        assert average_run_length(bursty) > 2 * average_run_length(smooth)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(DatasetError):
            RidesharingGenerator(events_per_minute=0)
        generator = RidesharingGenerator(events_per_minute=100)
        with pytest.raises(DatasetError):
            generator.generate(0.0)
        with pytest.raises(DatasetError):
            generator.generate_events(0)


class TestDomainSpecifics:
    def test_ridesharing_travel_speed_split(self):
        generator = RidesharingGenerator(events_per_minute=3000, seed=3, slow_traffic_fraction=0.5)
        stream = generator.generate(20.0).of_type("Travel")
        slow = sum(1 for event in stream if event["speed"] < 10.0)
        assert 0 < slow < len(stream)

    def test_stock_prices_form_random_walk(self):
        generator = StockGenerator(events_per_minute=2000, seed=3, companies=5)
        stream = generator.generate(30.0)
        prices = [event["price"] for event in stream if event["company"] == 0]
        assert prices, "expected at least one event for company 0"
        assert all(price >= 1.0 for price in prices)

    def test_smart_home_house_range(self):
        generator = SmartHomeGenerator(events_per_minute=2000, seed=3, houses=4)
        stream = generator.generate(10.0)
        assert {event["house"] for event in stream} <= set(range(4))

    def test_nyc_zone_range(self):
        generator = NycTaxiGenerator(events_per_minute=2000, seed=3, zones=6)
        stream = generator.generate(10.0)
        assert {event["pickup_zone"] for event in stream} <= set(range(6))
