"""Unit tests for local and edge predicates."""

from __future__ import annotations

import pytest

from repro.errors import PredicateError
from repro.events import Event
from repro.query import (
    CompositePredicate,
    attr_between,
    attr_equals,
    attr_greater,
    attr_less,
    same_attributes,
)
from repro.query.predicates import (
    AdjacentComparison,
    AttributeComparison,
    AttributeInSet,
    EdgeLambdaPredicate,
    LambdaPredicate,
)


class TestLocalPredicates:
    def test_comparisons(self):
        event = Event("T", 1.0, {"speed": 8.0})
        assert attr_less("speed", 10.0).evaluate(event)
        assert not attr_greater("speed", 10.0).evaluate(event)
        assert attr_equals("speed", 8.0).evaluate(event)
        assert attr_between("speed", 5.0, 9.0).evaluate(event)
        assert not attr_between("speed", 9.0, 12.0).evaluate(event)

    def test_missing_attribute_raises(self):
        event = Event("T", 1.0, {})
        with pytest.raises(PredicateError):
            attr_less("speed", 10.0).evaluate(event)

    def test_invalid_operator_rejected(self):
        with pytest.raises(PredicateError):
            AttributeComparison("speed", "<>", 1.0)

    def test_scoped_predicate_applies_to(self):
        predicate = attr_less("speed", 10.0, event_type="Travel")
        travel = Event("Travel", 1.0, {"speed": 3.0})
        pickup = Event("Pickup", 1.0, {"speed": 3.0})
        assert predicate.applies_to(travel)
        assert not predicate.applies_to(pickup)

    def test_attribute_in_set(self):
        predicate = AttributeInSet("kind", frozenset({"Pool", "XL"}))
        assert predicate.evaluate(Event("R", 1.0, {"kind": "Pool"}))
        assert not predicate.evaluate(Event("R", 1.0, {"kind": "Solo"}))

    def test_signatures_equal_for_equal_constraints(self):
        assert attr_less("speed", 10.0) == attr_less("speed", 10.0)
        assert attr_less("speed", 10.0) != attr_less("speed", 11.0)
        assert hash(attr_less("speed", 10.0)) == hash(attr_less("speed", 10.0))


class TestEdgePredicates:
    def test_same_attributes(self):
        predicate = same_attributes("driver", "rider")
        first = Event("R", 1.0, {"driver": 7, "rider": 3})
        second = Event("T", 2.0, {"driver": 7, "rider": 3})
        third = Event("T", 3.0, {"driver": 8, "rider": 3})
        assert predicate.evaluate(first, second)
        assert not predicate.evaluate(first, third)

    def test_same_attributes_ignores_missing(self):
        predicate = same_attributes("driver")
        with_driver = Event("R", 1.0, {"driver": 7})
        without = Event("X", 2.0, {})
        assert predicate.evaluate(with_driver, without)

    def test_same_attributes_requires_attribute_list(self):
        with pytest.raises(PredicateError):
            same_attributes()

    def test_adjacent_comparison(self):
        predicate = AdjacentComparison("price", "<", "price")
        cheap = Event("T", 1.0, {"price": 5.0})
        pricey = Event("T", 2.0, {"price": 9.0})
        assert predicate.evaluate(cheap, pricey)
        assert not predicate.evaluate(pricey, cheap)
        assert not predicate.evaluate(cheap, Event("T", 3.0, {}))


class TestCompositePredicate:
    def test_accepts_event_and_edge(self):
        composite = CompositePredicate(
            [attr_less("speed", 10.0, event_type="T"), same_attributes("driver")]
        )
        slow = Event("T", 1.0, {"speed": 5.0, "driver": 1})
        fast = Event("T", 2.0, {"speed": 20.0, "driver": 1})
        other_driver = Event("T", 3.0, {"speed": 5.0, "driver": 2})
        assert composite.accepts_event(slow)
        assert not composite.accepts_event(fast)
        assert composite.accepts_edge(slow, Event("T", 4.0, {"speed": 1.0, "driver": 1}))
        assert not composite.accepts_edge(slow, other_driver)

    def test_scoped_edge_predicate_applies_by_current_type(self):
        composite = CompositePredicate(
            [EdgeLambdaPredicate("never", lambda a, b: False, event_type="B")]
        )
        a_event = Event("A", 1.0)
        b_event = Event("B", 2.0)
        assert composite.accepts_edge(a_event, a_event)  # not scoped to A
        assert not composite.accepts_edge(a_event, b_event)

    def test_signature_is_order_insensitive(self):
        one = CompositePredicate([attr_less("x", 1), same_attributes("d")])
        two = CompositePredicate([same_attributes("d"), attr_less("x", 1)])
        assert one.signature() == two.signature()

    def test_signature_for_type(self):
        composite = CompositePredicate(
            [attr_less("speed", 10.0, event_type="T"), attr_less("price", 5.0, event_type="R")]
        )
        t_signature = composite.signature_for_type("T")
        r_signature = composite.signature_for_type("R")
        assert t_signature != r_signature

    def test_empty_composite(self):
        composite = CompositePredicate()
        assert composite.is_empty()
        assert composite.accepts_event(Event("A", 1.0))
        assert len(composite) == 0

    def test_rejects_non_predicate(self):
        with pytest.raises(PredicateError):
            CompositePredicate([object()])  # type: ignore[list-item]

    def test_lambda_predicate_label_identity(self):
        one = LambdaPredicate("slow", lambda e: e["speed"] < 10)
        two = LambdaPredicate("slow", lambda e: e["speed"] < 99)
        assert one == two  # identity is the label, by design
