"""Unit tests for aggregate functions and windows."""

from __future__ import annotations

import pytest

from repro.errors import PatternError, WindowError
from repro.events import Event
from repro.query import Window, avg, count_events, count_trends, max_of, min_of, sum_of
from repro.query.aggregates import AggregateFunction, AggregateKind


class TestAggregateFunctions:
    def test_constructors_and_describe(self):
        assert count_trends().describe() == "COUNT(*)"
        assert count_events("B").describe() == "COUNT(B)"
        assert sum_of("T", "duration").describe() == "SUM(T.duration)"
        assert avg("T", "speed").describe() == "AVG(T.speed)"
        assert min_of("T", "speed").describe() == "MIN(T.speed)"
        assert max_of("T", "speed").describe() == "MAX(T.speed)"

    def test_invalid_constructions(self):
        with pytest.raises(PatternError):
            AggregateFunction(AggregateKind.COUNT_TRENDS, event_type="B")
        with pytest.raises(PatternError):
            AggregateFunction(AggregateKind.COUNT_EVENTS)
        with pytest.raises(PatternError):
            AggregateFunction(AggregateKind.SUM, event_type="B")

    def test_contributions(self):
        travel = Event("T", 1.0, {"duration": 4.0})
        other = Event("R", 1.0, {"duration": 9.0})
        assert count_trends().contribution(travel) == 0.0
        assert count_events("T").contribution(travel) == 1.0
        assert count_events("T").contribution(other) == 0.0
        assert sum_of("T", "duration").contribution(travel) == 4.0
        assert sum_of("T", "duration").contribution(other) == 0.0
        assert min_of("T", "duration").candidate_value(travel) == 4.0
        assert min_of("T", "duration").candidate_value(other) is None
        assert sum_of("T", "duration").candidate_value(travel) is None

    def test_sharability_rules(self):
        assert count_trends().sharable_with(count_trends())
        assert not count_trends().sharable_with(count_events("B"))
        assert sum_of("B", "x").sharable_with(avg("B", "x"))
        assert sum_of("B", "x").sharable_with(count_events("B"))
        assert avg("B", "x").sharable_with(avg("B", "y"))
        assert min_of("B", "x").sharable_with(min_of("B", "x"))
        assert not min_of("B", "x").sharable_with(min_of("B", "y"))
        assert not min_of("B", "x").sharable_with(max_of("B", "x"))
        assert not min_of("B", "x").sharable_with(sum_of("B", "x"))

    def test_linearity(self):
        assert AggregateKind.COUNT_TRENDS.is_linear
        assert AggregateKind.AVG.is_linear
        assert not AggregateKind.MIN.is_linear
        assert not AggregateKind.MAX.is_linear


class TestWindows:
    def test_defaults_to_tumbling(self):
        window = Window(600.0)
        assert window.slide == 600.0
        assert window.is_tumbling

    def test_minutes_constructor(self):
        window = Window.minutes(10, 5)
        assert window.size == 600.0
        assert window.slide == 300.0
        assert not window.is_tumbling

    def test_invalid_windows(self):
        with pytest.raises(WindowError):
            Window(0.0)
        with pytest.raises(WindowError):
            Window(10.0, -1.0)
        with pytest.raises(WindowError):
            Window(10.0, 20.0)

    def test_instances_covering(self):
        window = Window(10.0, 5.0)
        assert list(window.instances_covering(12.0)) == [(5.0, 15.0), (10.0, 20.0)]
        assert list(window.instances_covering(3.0)) == [(0.0, 10.0)]
        with pytest.raises(WindowError):
            list(window.instances_covering(-1.0))

    def test_tumbling_instances(self):
        window = Window(10.0)
        assert list(window.instances_covering(25.0)) == [(20.0, 30.0)]

    def test_boundary_belongs_to_next_window(self):
        window = Window(10.0, 5.0)
        instances = list(window.instances_covering(10.0))
        assert (0.0, 10.0) not in instances
        assert (5.0, 15.0) in instances
        assert (10.0, 20.0) in instances

    def test_instance_indices_are_integers(self):
        window = Window(10.0, 5.0)
        assert list(window.instance_indices_covering(12.0)) == [1, 2]
        assert list(window.instance_indices_covering(3.0)) == [0]
        assert window.instance_bounds(2) == (10.0, 20.0)
        assert window.instances_per_event == 2

    def test_fractional_slide_boundary_events(self):
        # 3 * 0.1 accumulates float error (0.30000000000000004); the integer
        # index arithmetic must still treat t=0.3 as the start of instance 3
        # and exclude instance 0 (whose half-open span [0, 0.3) just ended).
        window = Window(0.3, 0.1)
        assert list(window.instance_indices_covering(0.3)) == [1, 2, 3]
        assert window.instances_per_event == 3
        for k in range(20):
            # Every instance-start timestamp k*slide belongs to instance k.
            timestamp = k * 0.1
            assert list(window.instance_indices_covering(timestamp))[-1] == k

    def test_coverage_never_exceeds_instances_per_event(self):
        for window in (Window(0.3, 0.1), Window(10.0, 3.0), Window(7.0, 2.5)):
            for step in range(200):
                timestamp = step * 0.17
                indices = list(window.instance_indices_covering(timestamp))
                assert 1 <= len(indices) <= window.instances_per_event
                for k in indices:
                    assert k >= 0

    def test_both_edges_snap_consistently(self):
        # 0.7 - 0.4 == 0.29999999999999993: the upper edge snaps this to the
        # start of instance 3, so the lower edge must drop instance 0 — the
        # two are mutually exclusive ([0, 0.3) vs [0.3, 0.6)).  An unsnapped
        # lower edge used to return range(0, 4).
        window = Window(0.3, 0.1)
        timestamp = 0.7 - 0.4
        assert list(window.instance_indices_covering(timestamp)) == [1, 2, 3]
