"""Unit tests for Query, the textual parser, and Workload."""

from __future__ import annotations

import pytest

from repro.errors import QueryParseError, WorkloadError
from repro.events import Event
from repro.query import (
    Query,
    Window,
    Workload,
    avg,
    count_trends,
    kleene,
    parse_query,
    same_attributes,
    seq,
)
from repro.query.aggregates import AggregateKind
from repro.query.predicates import attr_less


class TestQuery:
    def test_build_and_describe(self):
        query = Query.build(
            seq("Request", kleene("Travel")),
            aggregate=count_trends(),
            predicates=[same_attributes("driver", "rider")],
            group_by=["district"],
            window=Window.minutes(30),
            name="trips",
        )
        assert query.name == "trips"
        assert query.event_types() == {"Request", "Travel"}
        assert query.kleene_types() == {"Travel"}
        described = query.describe()
        assert "COUNT(*)" in described
        assert "GROUP BY district" in described

    def test_auto_names_are_unique(self):
        one = Query.build(seq("A", kleene("B")))
        two = Query.build(seq("A", kleene("B")))
        assert one.name != two.name
        assert one != two

    def test_group_key(self):
        query = Query.build(seq("A", kleene("B")), group_by=["district", "kind"])
        event = Event("A", 1.0, {"district": 7, "kind": "Pool"})
        assert query.group_key(event) == (7, "Pool")
        assert query.group_key(Event("A", 1.0)) == (None, None)

    def test_accepts_event_and_edge(self):
        query = Query.build(
            seq("A", kleene("B")),
            predicates=[attr_less("v", 10.0, event_type="B"), same_attributes("d")],
        )
        assert query.accepts_event(Event("B", 1.0, {"v": 5.0, "d": 1}))
        assert not query.accepts_event(Event("B", 1.0, {"v": 50.0, "d": 1}))
        assert query.accepts_edge(Event("A", 1.0, {"d": 1}), Event("B", 2.0, {"v": 1.0, "d": 1}))
        assert not query.accepts_edge(Event("A", 1.0, {"d": 1}), Event("B", 2.0, {"v": 1.0, "d": 2}))


class TestParser:
    def test_parse_full_query(self):
        query = parse_query(
            """
            RETURN COUNT(*)
            PATTERN SEQ(Request, Travel+, NOT Pickup)
            WHERE [driver, rider] AND Travel.speed < 10
            GROUP BY district
            WITHIN 1800 SLIDE 300
            """,
            name="q1",
        )
        assert query.name == "q1"
        assert query.aggregate.kind is AggregateKind.COUNT_TRENDS
        assert query.pattern.describe() == "SEQ(Request, Travel+, NOT Pickup)"
        assert query.group_by == ("district",)
        assert query.window.size == 1800.0
        assert query.window.slide == 300.0
        assert not query.predicates.is_empty()

    def test_parse_aggregates(self):
        for text, kind in [
            ("COUNT(*)", AggregateKind.COUNT_TRENDS),
            ("COUNT(Travel)", AggregateKind.COUNT_EVENTS),
            ("SUM(Travel.duration)", AggregateKind.SUM),
            ("AVG(Travel.speed)", AggregateKind.AVG),
            ("MIN(Trade.price)", AggregateKind.MIN),
            ("MAX(Trade.price)", AggregateKind.MAX),
        ]:
            query = parse_query(f"RETURN {text} PATTERN SEQ(A, Travel+) WITHIN 600")
            assert query.aggregate.kind is kind

    def test_parse_defaults_slide_to_size(self):
        query = parse_query("RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 600")
        assert query.window.is_tumbling

    def test_parse_where_value_types(self):
        query = parse_query(
            "RETURN COUNT(*) PATTERN SEQ(A, B+) "
            "WHERE B.kind == 'Pool' AND B.count >= 2 AND B.ratio < 0.5 WITHIN 60"
        )
        assert len(query.predicates.local_predicates) == 3

    def test_parse_errors(self):
        with pytest.raises(QueryParseError):
            parse_query("PATTERN SEQ(A, B+) WITHIN 600")
        with pytest.raises(QueryParseError):
            parse_query("RETURN COUNT(*) PATTERN SEQ(A, B+)")
        with pytest.raises(QueryParseError):
            parse_query("RETURN MEDIAN(A.x) PATTERN SEQ(A, B+) WITHIN 600")
        with pytest.raises(QueryParseError):
            parse_query("RETURN SUM(x) PATTERN SEQ(A, B+) WITHIN 600")
        with pytest.raises(QueryParseError):
            parse_query("RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE ??? WITHIN 600")


class TestWorkload:
    def test_add_and_lookup(self):
        q1 = Query.build(seq("A", kleene("B")), name="w_q1")
        q2 = Query.build(seq("C", kleene("B")), name="w_q2")
        workload = Workload([q1, q2], name="demo")
        assert len(workload) == 2
        assert workload["w_q1"] is q1
        assert "w_q2" in workload
        assert q1 in workload

    def test_duplicate_names_rejected(self):
        q1 = Query.build(seq("A", kleene("B")), name="dup")
        q2 = Query.build(seq("C", kleene("B")), name="dup")
        with pytest.raises(WorkloadError):
            Workload([q1, q2])

    def test_missing_query_lookup(self):
        workload = Workload([Query.build(seq("A", kleene("B")), name="only")])
        with pytest.raises(WorkloadError):
            workload["nope"]

    def test_kleene_type_analysis(self):
        q1 = Query.build(seq("A", kleene("B")), name="k_q1")
        q2 = Query.build(seq("C", kleene("B")), name="k_q2")
        q3 = Query.build(seq("C", kleene("D")), name="k_q3")
        workload = Workload([q1, q2, q3])
        assert workload.kleene_types() == {"B", "D"}
        assert workload.shareable_kleene_types() == {"B"}
        assert set(workload.queries_with_kleene("B")) == {q1, q2}

    def test_validate_empty(self):
        with pytest.raises(WorkloadError):
            Workload().validate()

    def test_aggregate_avg_shares_with_sum(self):
        q1 = Query.build(seq("A", kleene("B")), aggregate=avg("B", "x"), name="avg_q")
        assert q1.aggregate.kind is AggregateKind.AVG
