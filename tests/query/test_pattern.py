"""Unit tests for the pattern AST."""

from __future__ import annotations

import pytest

from repro.errors import PatternError
from repro.query import Kleene, Negation, Sequence, kleene, parse_pattern, seq, typ


class TestConstruction:
    def test_typ_and_kleene(self):
        pattern = kleene("B")
        assert isinstance(pattern, Kleene)
        assert pattern.event_types() == {"B"}
        assert pattern.kleene_types() == {"B"}

    def test_seq_flattens(self):
        pattern = seq("A", seq("B", "C"), "D")
        assert isinstance(pattern, Sequence)
        assert len(pattern.parts) == 4
        assert pattern.describe() == "SEQ(A, B, C, D)"

    def test_seq_requires_two_parts(self):
        with pytest.raises(PatternError):
            seq("A")

    def test_operator_sugar(self):
        pattern = typ("A") >> kleene("B")
        assert pattern.describe() == "SEQ(A, B+)"
        negated = ~typ("P")
        assert isinstance(negated, Negation)
        disj = typ("A") | typ("B")
        conj = typ("A") & typ("B")
        assert disj.describe() == "(A OR B)"
        assert conj.describe() == "(A AND B)"

    def test_invalid_type_name(self):
        with pytest.raises(PatternError):
            typ("not valid")

    def test_kleene_over_negation_rejected(self):
        with pytest.raises(PatternError):
            Kleene(Negation(typ("A")))


class TestIntrospection:
    def test_event_types_and_kleene_types(self):
        pattern = seq("R", kleene("T"), ~typ("P"))
        assert pattern.event_types() == {"R", "T", "P"}
        assert pattern.kleene_types() == {"T"}
        assert pattern.contains_kleene()
        assert pattern.contains_negation()

    def test_nested_kleene_types(self):
        pattern = kleene(seq("A", kleene("B")))
        assert pattern.kleene_types() == {"A", "B"}

    def test_walk_visits_all_nodes(self):
        pattern = seq("A", kleene("B"))
        names = [type(node).__name__ for node in pattern.walk()]
        assert names == ["Sequence", "EventTypePattern", "Kleene", "EventTypePattern"]


class TestParser:
    def test_parse_simple_seq(self):
        pattern = parse_pattern("SEQ(A, B+)")
        assert pattern.describe() == "SEQ(A, B+)"

    def test_parse_nested_kleene(self):
        pattern = parse_pattern("(SEQ(A, B+))+")
        assert pattern.describe() == "(SEQ(A, B+))+"
        assert pattern.kleene_types() == {"A", "B"}

    def test_parse_negation_and_sequence(self):
        pattern = parse_pattern("SEQ(Request, Travel+, NOT Pickup)")
        assert pattern.describe() == "SEQ(Request, Travel+, NOT Pickup)"

    def test_parse_disjunction(self):
        pattern = parse_pattern("SEQ(A, B+) OR SEQ(C, D+)")
        assert "OR" in pattern.describe()

    def test_parse_errors(self):
        from repro.errors import QueryParseError

        with pytest.raises(QueryParseError):
            parse_pattern("SEQ(A,")
        with pytest.raises(QueryParseError):
            parse_pattern("")
        with pytest.raises(QueryParseError):
            parse_pattern("SEQ(A, B) extra")
