"""``Window.instance_range_columns`` vs the scalar covering arithmetic.

The vectorized covering-range pass is the block-ingest hot path; its
monotone-skip optimization must be *invisible*: for any non-decreasing time
column, every ``(lows[i], highs[i])`` pair must equal the scalar
``instance_indices_covering`` range — including at exact-multiple
boundaries, a few ulps around them, and for fractional slides where the
float quotient accumulates error.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import WindowError
from repro.query import Window

WINDOWS = [
    Window(32.0),
    Window(32.0, 8.0),
    Window(16.0, 3.2),
    Window(0.3, 0.1),
    Window(10.0, 2.0),
    Window(1.0, 1.0),
    Window(7.0, 3.0),
]


def reference_ranges(window: Window, times):
    lows, highs = [], []
    for timestamp in times:
        covering = window.instance_indices_covering(timestamp)
        lows.append(covering.start)
        highs.append(covering.stop - 1)
    return lows, highs


@pytest.mark.parametrize("window", WINDOWS, ids=[w.describe() for w in WINDOWS])
@pytest.mark.parametrize("seed", range(5))
def test_matches_scalar_on_random_sorted_times(window, seed):
    rng = random.Random(seed)
    times = sorted(
        rng.uniform(0.0, 50.0 * window.slide) for _ in range(300)
    )
    assert window.instance_range_columns(times) == reference_ranges(window, times)


@pytest.mark.parametrize("window", WINDOWS, ids=[w.describe() for w in WINDOWS])
def test_matches_scalar_at_boundaries(window):
    # Exact multiples of the slide, and a few ulps around them: the scalar
    # path snaps quotients within 1e-12 of the next integer; the column pass
    # must snap the same values.
    times = []
    for k in range(0, 40):
        boundary = k * window.slide
        for value in (
            boundary,
            math.nextafter(boundary, math.inf),
            math.nextafter(boundary, -math.inf),
            boundary + window.slide / 2,
        ):
            if value >= 0:
                times.append(value)
    times.sort()
    assert window.instance_range_columns(times) == reference_ranges(window, times)


def test_matches_scalar_on_repeated_and_dense_times():
    window = Window(10.0, 2.0)
    times = [0.0, 0.0, 0.0, 1.999999999999, 2.0, 2.0, 2.0000000000001, 7.5, 7.5, 30.0]
    assert window.instance_range_columns(times) == reference_ranges(window, times)


def test_subrange_slicing():
    window = Window(10.0, 2.0)
    times = [float(i) for i in range(50)]
    lows, highs = window.instance_range_columns(times, 10, 20)
    ref_lows, ref_highs = reference_ranges(window, times[10:20])
    assert (lows, highs) == (ref_lows, ref_highs)


def test_large_time_jumps():
    # Jumps far beyond the previous covering range must recompute, not skip.
    window = Window(10.0, 2.0)
    times = [0.0, 1.0, 1000.0, 1000.5, 1e6, 1e6 + 3.0]
    assert window.instance_range_columns(times) == reference_ranges(window, times)


def test_negative_timestamp_raises():
    window = Window(10.0, 2.0)
    with pytest.raises(WindowError):
        window.instance_range_columns([-1.0])
