"""Unit tests for the merged template and workload analysis (Definitions 4-5)."""

from __future__ import annotations

import pytest

from repro.errors import TemplateError
from repro.query import (
    Query,
    Window,
    Workload,
    avg,
    count_trends,
    kleene,
    max_of,
    seq,
    sum_of,
)
from repro.template import MergedTemplate, analyze_workload
from repro.template.decompose import decomposable, decompose_query


def _q(pattern, name, aggregate=None, group_by=(), window=None):
    return Query.build(
        pattern,
        aggregate=aggregate or count_trends(),
        group_by=group_by,
        window=window or Window(600.0),
        name=name,
    )


class TestMergedTemplate:
    def test_figure3b_merged_template(self):
        """Figure 3(b): SEQ(A,B+) and SEQ(C,B+) share the B self-loop."""
        q1 = _q(seq("A", kleene("B")), "m_q1")
        q2 = _q(seq("C", kleene("B")), "m_q2")
        merged = MergedTemplate.from_queries([q1, q2])
        assert merged.event_types == {"A", "B", "C"}
        assert merged.transition_label("B", "B") == {q1, q2}
        assert merged.transition_label("A", "B") == {q1}
        assert merged.transition_label("C", "B") == {q2}
        assert merged.queries_sharing_kleene("B") == {q1, q2}
        assert merged.shared_kleene_types() == {"B"}
        assert merged.predecessor_types("B", q1) == ("A", "B")
        assert merged.predecessor_types("B", q2) == ("B", "C")

    def test_template_lookup_unknown_query(self):
        q1 = _q(seq("A", kleene("B")), "m_q3")
        merged = MergedTemplate.from_queries([q1])
        with pytest.raises(TemplateError):
            merged.template(_q(seq("A", kleene("B")), "other"))

    def test_empty_rejected(self):
        with pytest.raises(TemplateError):
            MergedTemplate({})


class TestWorkloadAnalysis:
    def test_sharable_queries_grouped(self):
        q1 = _q(seq("A", kleene("B")), "a_q1")
        q2 = _q(seq("C", kleene("B")), "a_q2")
        q3 = _q(seq("D", kleene("E")), "a_q3")
        analysis = analyze_workload(Workload([q1, q2, q3]))
        assert len(analysis.groups) == 2
        shared = analysis.group_of(q1)
        assert set(shared.queries) == {q1, q2}
        assert shared.shared_kleene_types == {"B"}
        assert shared.is_shared
        singleton = analysis.group_of(q3)
        assert singleton.queries == (q3,)
        assert not singleton.is_shared

    def test_different_groupby_not_shared(self):
        q1 = _q(seq("A", kleene("B")), "g_q1", group_by=("district",))
        q2 = _q(seq("C", kleene("B")), "g_q2", group_by=("company",))
        analysis = analyze_workload([q1, q2])
        assert len(analysis.groups) == 2

    def test_incompatible_aggregates_not_shared(self):
        q1 = _q(seq("A", kleene("B")), "agg_q1", aggregate=count_trends())
        q2 = _q(seq("C", kleene("B")), "agg_q2", aggregate=max_of("B", "x"))
        analysis = analyze_workload([q1, q2])
        assert len(analysis.groups) == 2

    def test_sum_and_avg_shared(self):
        q1 = _q(seq("A", kleene("B")), "sa_q1", aggregate=sum_of("B", "x"))
        q2 = _q(seq("C", kleene("B")), "sa_q2", aggregate=avg("B", "x"))
        analysis = analyze_workload([q1, q2])
        assert len(analysis.groups) == 1
        assert analysis.groups[0].is_shared

    def test_pane_size_is_gcd_of_windows(self):
        q1 = _q(seq("A", kleene("B")), "p_q1", window=Window(600.0, 300.0))
        q2 = _q(seq("C", kleene("B")), "p_q2", window=Window(900.0, 300.0))
        analysis = analyze_workload([q1, q2])
        assert analysis.groups[0].pane_size == pytest.approx(300.0)

    def test_transitive_grouping(self):
        """q1~q2 share B+, q2~q3 share C+, so all three land in one group."""
        q1 = _q(seq("A", kleene("B")), "t_q1")
        q2 = _q(seq(kleene("B"), kleene("C")), "t_q2")
        q3 = _q(seq("D", kleene("C")), "t_q3")
        analysis = analyze_workload([q1, q2, q3])
        assert len(analysis.groups) == 1
        assert analysis.groups[0].shared_kleene_types == {"B", "C"}


class TestDecomposition:
    def test_disjunction_decomposed(self):
        q = _q(seq("A", kleene("B")) | seq("C", kleene("D")), "d_q1")
        assert decomposable(q)
        decomposition = decompose_query(q)
        assert len(decomposition.sub_queries) == 2
        assert decomposition.operator == "or"
        assert decomposition.combine({"d_q1#L": 3.0, "d_q1#R": 4.0}) == 7.0

    def test_conjunction_combination(self):
        q = _q(seq("A", kleene("B")) & seq("C", kleene("D")), "d_q2")
        decomposition = decompose_query(q)
        assert decomposition.operator == "and"
        assert decomposition.combine({"d_q2#L": 3.0, "d_q2#R": 4.0}) == 12.0

    def test_overlapping_types_rejected(self):
        q = _q(seq("A", kleene("B")) | seq("C", kleene("B")), "d_q3")
        with pytest.raises(TemplateError):
            decompose_query(q)

    def test_non_count_rejected(self):
        q = _q(seq("A", kleene("B")) | seq("C", kleene("D")), "d_q4", aggregate=sum_of("B", "x"))
        with pytest.raises(TemplateError):
            decompose_query(q)

    def test_analysis_records_decomposition(self):
        q = _q(seq("A", kleene("B")) | seq("C", kleene("D")), "d_q5")
        partner = _q(seq("Z", kleene("B")), "d_q6")
        analysis = analyze_workload([q, partner])
        assert "d_q5" in analysis.decompositions
        sub_names = {sub.name for sub in analysis.decompositions["d_q5"].sub_queries}
        all_grouped = {query.name for group in analysis.groups for query in group.queries}
        assert sub_names <= all_grouped
