"""Unit tests for query template compilation (Section 3.1, Figure 3)."""

from __future__ import annotations

import pytest

from repro.errors import TemplateError
from repro.query import kleene, parse_pattern, seq, typ
from repro.template import compile_pattern


class TestSimplePatterns:
    def test_single_type(self):
        template = compile_pattern(typ("A"))
        assert template.event_types == {"A"}
        assert template.start_types == {"A"}
        assert template.end_types == {"A"}
        assert template.edges == frozenset()

    def test_kleene_single_type(self):
        template = compile_pattern(kleene("B"))
        assert template.edges == {("B", "B")}
        assert template.has_self_loop("B")
        assert template.kleene_types == {"B"}

    def test_figure3a_seq_a_bplus(self):
        """Figure 3(a): SEQ(A, B+) — pt(B) = {A, B}, start A, end B."""
        template = compile_pattern(seq("A", kleene("B")))
        assert template.predecessor_types("B") == ("A", "B")
        assert template.predecessor_types("A") == ()
        assert template.start_types == {"A"}
        assert template.end_types == {"B"}

    def test_three_step_sequence(self):
        template = compile_pattern(seq("A", kleene("B"), "C"))
        assert template.predecessor_types("B") == ("A", "B")
        assert template.predecessor_types("C") == ("B",)
        assert template.start_types == {"A"}
        assert template.end_types == {"C"}
        assert template.successor_types("B") == {"B", "C"}

    def test_two_kleene_parts(self):
        template = compile_pattern(seq(kleene("A"), kleene("B")))
        assert template.predecessor_types("A") == ("A",)
        assert template.predecessor_types("B") == ("A", "B")
        assert template.start_types == {"A"}
        assert template.end_types == {"B"}


class TestNestedKleene:
    def test_figure8_nested_kleene(self):
        """Figure 8 / Example 10: (SEQ(A, B+))+ adds the loop-back B -> A."""
        template = compile_pattern(kleene(seq("A", kleene("B"))))
        assert template.predecessor_types("B") == ("A", "B")
        assert template.predecessor_types("A") == ("B",)
        assert template.start_types == {"A"}
        assert template.end_types == {"B"}
        assert template.kleene_types == {"A", "B"}


class TestNegation:
    def test_negation_in_middle(self):
        template = compile_pattern(parse_pattern("SEQ(A, NOT X, B+)"))
        assert template.event_types == {"A", "B"}
        assert template.negated_types == {"X"}
        constraint = template.negations[0]
        assert constraint.before_types == {"A"}
        assert constraint.negated_type == "X"
        assert constraint.after_types == {"B"}
        # The positive edge A -> B still exists.
        assert ("A", "B") in template.edges

    def test_trailing_negation(self):
        template = compile_pattern(parse_pattern("SEQ(R, T+, NOT P)"))
        assert template.end_types == {"T"}
        trailing = [c for c in template.negations if not c.after_types]
        assert len(trailing) == 1
        assert trailing[0].negated_type == "P"
        assert trailing[0].before_types == {"T"}

    def test_negation_of_complex_pattern_rejected(self):
        with pytest.raises(TemplateError):
            compile_pattern(parse_pattern("SEQ(A, NOT SEQ(X, Y), B)"))

    def test_bare_negation_rejected(self):
        with pytest.raises(TemplateError):
            compile_pattern(parse_pattern("NOT A"))


class TestUnsupported:
    def test_disjunction_rejected(self):
        with pytest.raises(TemplateError):
            compile_pattern(parse_pattern("SEQ(A, B+) OR SEQ(C, D+)"))

    def test_relevance_checks(self):
        template = compile_pattern(parse_pattern("SEQ(A, NOT X, B+)"))
        assert template.is_relevant("A")
        assert template.is_relevant("X")
        assert not template.is_relevant("Z")
