"""Unit tests for graphlets, HAMLET nodes and the HAMLET graph helpers."""

from __future__ import annotations

import pytest

from repro.core.expression import SnapshotExpression
from repro.core.graphlet import Graphlet, HamletNode
from repro.core.hamlet_graph import HamletGraph, TypeAccumulator
from repro.core.snapshot import SnapshotLevel, SnapshotTable
from repro.errors import SharingError
from repro.events import Event
from repro.greta.aggregators import AggregateVector
from repro.query import Query, kleene, seq
from repro.template import compile_pattern


def _vector(count, dimension=0):
    return AggregateVector(float(count), (0.0,) * dimension)


class TestHamletNode:
    def test_resolved_lookup(self):
        node = HamletNode(event=Event("B", 1.0), resolved={"q1": _vector(3)})
        table = SnapshotTable(dimension=0)
        assert node.covers_query("q1")
        assert not node.covers_query("q2")
        assert node.vector_for("q1", table).count == 3.0
        assert node.vector_for("q2", table).is_zero()

    def test_expression_lookup(self):
        table = SnapshotTable(dimension=0)
        snapshot = table.create(SnapshotLevel.GRAPHLET, "B", {"q1": _vector(2)})
        node = HamletNode(
            event=Event("B", 1.0),
            expression=SnapshotExpression.identity(snapshot.snapshot_id, 0),
            expression_queries=frozenset({"q1", "q2"}),
        )
        assert node.vector_for("q1", table).count == 2.0
        # q2 is covered by the expression but has no snapshot value -> zero.
        assert node.vector_for("q2", table).count == 0.0
        assert node.memory_units() == 2  # event + 1 coefficient


class TestGraphlet:
    def test_shared_graphlet_requires_snapshot(self):
        with pytest.raises(SharingError):
            Graphlet("B", shared=True, query_names=frozenset({"q1"}))

    def test_append_checks_type_and_active(self):
        graphlet = Graphlet("B", shared=False, query_names=frozenset({"q1"}))
        graphlet.append(HamletNode(event=Event("B", 1.0)))
        with pytest.raises(SharingError):
            graphlet.append(HamletNode(event=Event("A", 2.0)))
        graphlet.deactivate()
        with pytest.raises(SharingError):
            graphlet.append(HamletNode(event=Event("B", 3.0)))
        assert graphlet.size() == 1


class TestTypeAccumulator:
    def test_resolved_totals(self):
        accumulator = TypeAccumulator(dimension=0)
        accumulator.add_resolved("q1", _vector(2))
        accumulator.add_resolved("q1", _vector(3))
        table = SnapshotTable(dimension=0)
        assert accumulator.total("q1", table).count == 5.0
        assert accumulator.total("q2", table).count == 0.0

    def test_pending_expressions_and_fold(self):
        table = SnapshotTable(dimension=0)
        snapshot = table.create(SnapshotLevel.GRAPHLET, "B", {"q1": _vector(4), "q2": _vector(1)})
        accumulator = TypeAccumulator(dimension=0)
        accumulator.add_pending(
            SnapshotExpression.identity(snapshot.snapshot_id, 0), frozenset({"q1", "q2"})
        )
        assert accumulator.total("q1", table).count == 4.0
        evaluations = accumulator.fold(table)
        assert evaluations > 0
        assert not accumulator.pending
        assert accumulator.total("q1", table).count == 4.0
        assert accumulator.total("q2", table).count == 1.0


class TestHamletGraphHelpers:
    def _setup(self):
        q1 = Query.build(seq("A", kleene("B")), name="hg_q1")
        template = compile_pattern(q1.pattern)
        graph = HamletGraph([q1], dimension=0)
        table = SnapshotTable(dimension=0)
        return q1, template, graph, table

    def test_open_and_deactivate_graphlets(self):
        _, _, graph, _ = self._setup()
        first = graph.open_graphlet(Graphlet("B", False, frozenset({"hg_q1"})))
        assert graph.active_graphlet("B") is first
        graph.deactivate_other_types("A")
        assert graph.active_graphlet("B") is None
        second = graph.open_graphlet(Graphlet("B", False, frozenset({"hg_q1"})))
        assert graph.active_graphlet("B") is second

    def test_predecessor_enumeration_and_end_total(self):
        q1, template, graph, table = self._setup()
        graphlet_a = graph.open_graphlet(Graphlet("A", False, frozenset({"hg_q1"})))
        a_node = HamletNode(event=Event("A", 0.0), resolved={"hg_q1": _vector(1)})
        graph.register_node(graphlet_a, a_node)
        graphlet_b = graph.open_graphlet(Graphlet("B", False, frozenset({"hg_q1"})))
        b_event = Event("B", 1.0)
        predecessors = list(graph.predecessors_for(q1, template, b_event))
        assert predecessors == [a_node]
        b_node = HamletNode(event=b_event, resolved={"hg_q1": _vector(1)})
        graph.register_node(graphlet_b, b_node)
        total = graph.end_total(q1, template, table)
        assert total.count == 1.0

    def test_accumulator_predecessor_total(self):
        q1, template, graph, table = self._setup()
        graph.accumulator("A").add_resolved("hg_q1", _vector(2))
        graph.accumulator("B").add_resolved("hg_q1", _vector(5))
        total = graph.predecessor_total(q1, template, "B", table)
        # pt(B) = {A, B}: totals of both types feed the snapshot.
        assert total.count == 7.0

    def test_memory_units_counts_state(self):
        _, _, graph, _ = self._setup()
        graphlet = graph.open_graphlet(Graphlet("B", False, frozenset({"hg_q1"})))
        graph.register_node(graphlet, HamletNode(event=Event("B", 1.0), resolved={"hg_q1": _vector(1)}))
        graph.add_negative(Event("X", 2.0), frozenset({"hg_q1"}))
        assert graph.memory_units() >= 3
