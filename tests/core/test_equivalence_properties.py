"""Property-based cross-engine equivalence tests.

The strongest correctness statement the library can make: over randomized
small streams, HAMLET (with any sharing policy), GRETA, the two-step engine
and the brute-force oracle all produce identical aggregates.  hypothesis
drives the stream generation; the shared-vs-non-shared decision path is
exercised by running HAMLET with the always-share, never-share and dynamic
optimizers over the same input.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import BruteForceOracle, TwoStepEngine
from repro.core import HamletEngine
from repro.greta import GretaEngine
from repro.optimizer import AlwaysShareOptimizer, DynamicSharingOptimizer, NeverShareOptimizer
from repro.query import (
    Query,
    Window,
    count_events,
    count_trends,
    kleene,
    parse_pattern,
    same_attributes,
    seq,
    sum_of,
)
from repro.query.predicates import attr_less
from repro.events import Event

#: Event types used by the random streams.
TYPE_NAMES = ("A", "B", "C", "D")

event_strategy = st.tuples(
    st.sampled_from(TYPE_NAMES),
    st.integers(min_value=0, max_value=6),  # attribute value
    st.integers(min_value=1, max_value=2),  # partition-ish attribute "d"
)

stream_strategy = st.lists(event_strategy, min_size=0, max_size=14)


def _events(raw) -> list[Event]:
    return [
        Event(type_name, float(index), {"v": float(value), "d": d})
        for index, (type_name, value, d) in enumerate(raw)
    ]


def _workload() -> list[Query]:
    window = Window(1_000_000.0)
    return [
        Query.build(seq("A", kleene("B")), window=window, name="prop_q1"),
        Query.build(seq("C", kleene("B")), window=window, name="prop_q2"),
        Query.build(
            seq("A", kleene("B")),
            predicates=[attr_less("v", 4.0, event_type="B")],
            window=window,
            name="prop_q3",
        ),
        Query.build(seq("C", kleene("B"), "D"), aggregate=sum_of("B", "v"), window=window,
                    name="prop_q4"),
        Query.build(seq("A", kleene("B")), predicates=[same_attributes("d")],
                    aggregate=count_events("B"), window=window, name="prop_q5"),
        Query.build(parse_pattern("SEQ(A, NOT D, B+)"), window=window, name="prop_q6"),
    ]


@settings(max_examples=60, deadline=None)
@given(raw=stream_strategy)
def test_hamlet_matches_greta_and_oracle(raw):
    """All engines agree on every query for every random stream."""
    events = _events(raw)
    queries = _workload()
    oracle = BruteForceOracle(max_events=32).evaluate(queries, events)
    greta = GretaEngine().evaluate(queries, events)
    assert greta == pytest.approx(oracle)
    for optimizer in (DynamicSharingOptimizer(), AlwaysShareOptimizer(), NeverShareOptimizer()):
        hamlet = HamletEngine(optimizer).evaluate(queries, events)
        assert hamlet == pytest.approx(oracle)


@settings(max_examples=30, deadline=None)
@given(raw=stream_strategy)
def test_two_step_matches_oracle(raw):
    events = _events(raw)
    queries = _workload()[:3]
    oracle = BruteForceOracle(max_events=32).evaluate(queries, events)
    two_step = TwoStepEngine().evaluate(queries, events)
    assert two_step == pytest.approx(oracle)


@settings(max_examples=40, deadline=None)
@given(raw=stream_strategy, burst_boundary=st.integers(min_value=0, max_value=14))
def test_incremental_processing_is_order_insensitive_to_burst_cuts(raw, burst_boundary):
    """Forcing an extra burst boundary (an irrelevant event) never changes results.

    An event of a type no query references must be completely transparent:
    it may cut a burst in two, but the aggregates stay identical.
    """
    events = _events(raw)
    queries = _workload()
    cut = min(burst_boundary, len(events))
    with_marker = events[:cut] + [Event("Zzz", float(cut) - 0.5 if cut else 0.0)] + events[cut:]
    with_marker.sort()
    plain = HamletEngine(AlwaysShareOptimizer()).evaluate(queries, events)
    marked = HamletEngine(AlwaysShareOptimizer()).evaluate(queries, with_marker)
    assert plain == pytest.approx(marked)


@settings(max_examples=40, deadline=None)
@given(
    counts=st.tuples(
        st.integers(min_value=0, max_value=3),  # A events
        st.integers(min_value=0, max_value=3),  # C events
        st.integers(min_value=0, max_value=10),  # B events
    )
)
def test_closed_form_counts_for_figure4_shape(counts):
    """For SEQ(A,B+)/SEQ(C,B+) without predicates the counts have a closed form.

    Every non-empty subset of the B events following a starter forms one
    trend, so COUNT(*) = #starters * (2^#B - 1) when all B events arrive after
    all starters.
    """
    a_count, c_count, b_count = counts
    events = []
    time = 0.0
    for _ in range(a_count):
        events.append(Event("A", time))
        time += 1.0
    for _ in range(c_count):
        events.append(Event("C", time))
        time += 1.0
    for _ in range(b_count):
        events.append(Event("B", time))
        time += 1.0
    q1 = Query.build(seq("A", kleene("B")), window=Window(1e6), name="cf_q1")
    q2 = Query.build(seq("C", kleene("B")), window=Window(1e6), name="cf_q2")
    results = HamletEngine(AlwaysShareOptimizer()).evaluate([q1, q2], events)
    expected_factor = (2 ** b_count) - 1
    assert results["cf_q1"] == pytest.approx(a_count * expected_factor)
    assert results["cf_q2"] == pytest.approx(c_count * expected_factor)
