"""AutoKernelBackend: per-burst selection, gated bit-identical.

The auto backend is a dispatcher, not a third numeric core: every run folds
through either the reference loop or the vectorized closed form, chosen by
run length.  On integer-valued workloads both delegates are bit-identical,
so *any* threshold must reproduce the fixed backends exactly — that is the
gate these tests pin, alongside the dispatch mechanics (threshold, env pin,
graceful degradation without NumPy).
"""

from __future__ import annotations

import random

import pytest

from repro.core import HamletEngine
from repro.core.kernels import (
    AUTO_KERNEL_THRESHOLD_ENV,
    KERNEL_BACKENDS,
    AutoKernelBackend,
    PythonKernelBackend,
    resolve_kernel_backend,
)
from repro.events import Event
from repro.query import Query, Window, kleene, seq, sum_of
from repro.runtime import StreamingExecutor


def make_stream(seed: int, size: int) -> list[Event]:
    rng = random.Random(seed)
    events = []
    for index in range(size):
        type_name = rng.choices(("A", "B", "C"), weights=(1.0, 4.0, 1.0))[0]
        events.append(Event(type_name, float(index), {"v": float(rng.randint(0, 5))}))
    return events


def workload() -> list[Query]:
    window = Window(32.0, 8.0)
    return [
        Query.build(seq("A", kleene("B")), window=window, name="ak_q1"),
        Query.build(
            seq("A", kleene("B")),
            aggregate=sum_of("B", "v"),
            window=window,
            name="ak_q2",
        ),
    ]


def report_fingerprint(report):
    return (
        report.totals,
        [
            (p.group_key, p.window_index, dict(p.results), p.events)
            for p in report.partition_results
        ],
    )


def run_with(backend) -> tuple:
    executor = StreamingExecutor(workload(), HamletEngine, kernel_backend=backend)
    return report_fingerprint(executor.run(make_stream(41, 500)))


class TestResolution:
    def test_registered_and_resolvable(self):
        assert "auto" in KERNEL_BACKENDS
        backend = resolve_kernel_backend("auto")
        assert isinstance(backend, AutoKernelBackend)
        assert backend.wants_bursts
        assert backend.threshold >= 1

    def test_threshold_env_pin_skips_calibration(self, monkeypatch):
        monkeypatch.setenv(AUTO_KERNEL_THRESHOLD_ENV, "17")
        assert AutoKernelBackend().threshold == 17

    def test_explicit_threshold_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(AUTO_KERNEL_THRESHOLD_ENV, "17")
        assert AutoKernelBackend(threshold=3).threshold == 3

    def test_degrades_without_numpy(self):
        backend = AutoKernelBackend(threshold=1)
        backend._vector = None
        # Every run length selects the reference backend.
        assert isinstance(backend._select(10**6), PythonKernelBackend)


class TestDispatch:
    def test_run_length_selects_backend(self):
        pytest.importorskip("numpy")
        backend = AutoKernelBackend(threshold=8)
        assert isinstance(backend._select(7), PythonKernelBackend)
        assert backend._select(8) is backend._vector
        assert backend._select(9) is backend._vector

    @pytest.mark.parametrize("count", (3, 8, 20))
    def test_scalar_fold_matches_reference(self, count):
        pytest.importorskip("numpy")
        indices = (0, 1, 2, 3)
        auto = AutoKernelBackend(threshold=8)
        reference = PythonKernelBackend()
        got: dict[int, float] = {0: 2.0, 1: 0.0}
        want: dict[int, float] = {0: 2.0, 1: 0.0}
        created_got = auto.fold_scalar_run(got, indices, (got,), 1.0, count)
        created_want = reference.fold_scalar_run(want, indices, (want,), 1.0, count)
        assert got == want  # integer-valued: bit-identical on either side
        assert created_got == created_want


class TestBitIdenticalGate:
    """Integer workload: auto must equal both fixed backends exactly."""

    def test_matches_python_backend(self):
        assert run_with("auto") == run_with("python")

    def test_matches_numpy_backend(self):
        pytest.importorskip("numpy")
        assert run_with("auto") == run_with("numpy")

    @pytest.mark.parametrize("threshold", (1, 4, 10**9))
    def test_threshold_never_changes_results(self, threshold):
        # threshold=1 folds every run vectorized, 10**9 none: results are a
        # value contract, the threshold is only a speed knob.
        assert run_with(AutoKernelBackend(threshold=threshold)) == run_with("python")
