"""Unit tests for the HAMLET engine: paper examples, sharing mechanics, predicates."""

from __future__ import annotations

import pytest

from repro.core import HamletEngine
from repro.core.snapshot import SnapshotLevel
from repro.errors import ExecutionError, SharingError
from repro.events import Event
from repro.greta import GretaEngine
from repro.optimizer import AlwaysShareOptimizer, DynamicSharingOptimizer, NeverShareOptimizer
from repro.query import (
    Query,
    Window,
    avg,
    count_events,
    count_trends,
    kleene,
    min_of,
    parse_pattern,
    same_attributes,
    seq,
    sum_of,
)
from repro.query.predicates import attr_less
from tests.conftest import make_events


def _always_share_engine() -> HamletEngine:
    return HamletEngine(AlwaysShareOptimizer())


class TestPaperRunningExample:
    """Figure 4(b), Example 6, Tables 3 and 4 on the stream a1 a2 c1 b3..b6."""

    def test_final_counts_match_greta(self, ab_query, cb_query, figure4_events):
        hamlet = _always_share_engine().evaluate([ab_query, cb_query], figure4_events)
        greta = GretaEngine().evaluate([ab_query, cb_query], figure4_events)
        assert hamlet == pytest.approx(greta)
        assert hamlet[ab_query.name] == 30.0
        assert hamlet[cb_query.name] == 15.0

    def test_single_graphlet_snapshot_for_the_b_burst(self, ab_query, cb_query, figure4_events):
        """The shared B burst is processed with one graphlet-level snapshot x."""
        engine = _always_share_engine()
        engine.evaluate([ab_query, cb_query], figure4_events)
        table = engine.snapshot_table
        assert table.created_count(SnapshotLevel.GRAPHLET) == 1
        assert table.created_count(SnapshotLevel.EVENT) == 0
        snapshot = list(table.snapshots())[0]
        # Table 4: value(x, q1) = sum(A1, q1) = 2 and value(x, q2) = sum(C2, q2) = 1.
        assert table.value(snapshot.snapshot_id, ab_query.name).count == 2.0
        assert table.value(snapshot.snapshot_id, cb_query.name).count == 1.0

    def test_example6_second_graphlet_snapshot(self, ab_query, cb_query):
        """Figure 5(b): a second burst of B after new A/C events creates snapshot y."""
        events = make_events("A A C B B B B A C B B")
        engine = _always_share_engine()
        hamlet = engine.evaluate([ab_query, cb_query], events)
        greta = GretaEngine().evaluate([ab_query, cb_query], events)
        assert hamlet == pytest.approx(greta)
        assert engine.snapshot_table.created_count(SnapshotLevel.GRAPHLET) == 2

    def test_events_stored_once_for_the_workload(self, ab_query, cb_query, figure4_events):
        """HAMLET stores each event once; GRETA replicates per query (Section 3.3)."""
        hamlet = _always_share_engine()
        hamlet.evaluate([ab_query, cb_query], figure4_events)
        assert hamlet.graph.node_count() == 7

    def test_memory_advantage_grows_with_workload_size(self, ab_query, cb_query):
        """On a longer burst and more queries HAMLET's footprint stays below GRETA's."""
        extra = Query.build(seq("D", kleene("B")), window=Window(1000.0), name="mem_q3")
        queries = [ab_query, cb_query, extra]
        events = make_events("A A C D " + "B " * 20)
        hamlet = _always_share_engine()
        hamlet.evaluate(queries, events)
        greta = GretaEngine()
        greta.evaluate(queries, events)
        assert hamlet.memory_units() < greta.memory_units()


class TestEventLevelSnapshots:
    def test_predicate_differences_create_event_snapshots(self, ab_query):
        """Example 7: an edge that holds for one query only forces a snapshot z."""
        q_filtered = Query.build(
            seq("C", kleene("B")),
            predicates=[attr_less("v", 10.0, event_type="B")],
            window=Window(1000.0),
            name="z_q2",
        )
        events = [
            Event("A", 0.0, {"v": 0.0}),
            Event("C", 1.0, {"v": 0.0}),
            Event("B", 2.0, {"v": 5.0}),
            Event("B", 3.0, {"v": 50.0}),  # fails q2's predicate, passes q1
            Event("B", 4.0, {"v": 5.0}),
        ]
        engine = _always_share_engine()
        hamlet = engine.evaluate([ab_query, q_filtered], events)
        greta = GretaEngine().evaluate([ab_query, q_filtered], events)
        assert hamlet == pytest.approx(greta)
        assert engine.snapshot_table.created_count(SnapshotLevel.EVENT) >= 1

    def test_edge_predicates_force_per_query_evaluation(self):
        q1 = Query.build(seq("A", kleene("B")), window=Window(1000.0), name="e_q1")
        q2 = Query.build(
            seq("A", kleene("B")),
            predicates=[same_attributes("d")],
            window=Window(1000.0),
            name="e_q2",
        )
        events = [
            Event("A", 0.0, {"d": 1}),
            Event("B", 1.0, {"d": 1}),
            Event("B", 2.0, {"d": 2}),
        ]
        hamlet = _always_share_engine().evaluate([q1, q2], events)
        greta = GretaEngine().evaluate([q1, q2], events)
        assert hamlet == pytest.approx(greta)


class TestAggregateSharing:
    def test_mixed_linear_aggregates_share(self):
        q_count = Query.build(seq("A", kleene("B")), aggregate=count_events("B"),
                              window=Window(1000.0), name="m_q1")
        q_sum = Query.build(seq("C", kleene("B")), aggregate=sum_of("B", "v"),
                            window=Window(1000.0), name="m_q2")
        q_avg = Query.build(seq("A", kleene("B")), aggregate=avg("B", "v"),
                            window=Window(1000.0), name="m_q3")
        events = make_events("A C B B B", b={"v": 2.0})
        hamlet = _always_share_engine().evaluate([q_count, q_sum, q_avg], events)
        greta = GretaEngine().evaluate([q_count, q_sum, q_avg], events)
        assert hamlet == pytest.approx(greta)

    def test_min_max_rejected(self):
        q_min = Query.build(seq("A", kleene("B")), aggregate=min_of("B", "v"), name="m_min")
        engine = HamletEngine()
        with pytest.raises(SharingError):
            engine.start([q_min])


class TestNegationAndNestedKleene:
    def test_negation_shared(self):
        q1 = Query.build(parse_pattern("SEQ(A, NOT X, B+)"), window=Window(1000.0), name="n_q1")
        q2 = Query.build(seq("C", kleene("B")), window=Window(1000.0), name="n_q2")
        events = make_events("A C X B B A B")
        hamlet = HamletEngine(DynamicSharingOptimizer()).evaluate([q1, q2], events)
        greta = GretaEngine().evaluate([q1, q2], events)
        assert hamlet == pytest.approx(greta)

    def test_trailing_negation_shared(self):
        q1 = Query.build(parse_pattern("SEQ(R, T+, NOT P)"), window=Window(1000.0), name="tn_q1")
        q2 = Query.build(parse_pattern("SEQ(S, T+)"), window=Window(1000.0), name="tn_q2")
        events = make_events("R S T T P T")
        hamlet = _always_share_engine().evaluate([q1, q2], events)
        greta = GretaEngine().evaluate([q1, q2], events)
        assert hamlet == pytest.approx(greta)

    def test_nested_kleene_shared(self):
        q1 = Query.build(parse_pattern("(SEQ(A, B+))+"), window=Window(1000.0), name="nk_q1")
        q2 = Query.build(parse_pattern("(SEQ(C, B+))+"), window=Window(1000.0), name="nk_q2")
        events = make_events("A C B B A B B")
        hamlet = _always_share_engine().evaluate([q1, q2], events)
        greta = GretaEngine().evaluate([q1, q2], events)
        assert hamlet == pytest.approx(greta)


class TestSplitMergeBehaviour:
    def test_never_share_creates_no_snapshots(self, ab_query, cb_query, figure4_events):
        engine = HamletEngine(NeverShareOptimizer())
        results = engine.evaluate([ab_query, cb_query], figure4_events)
        assert results[ab_query.name] == 30.0
        assert engine.snapshots_created() == 0
        assert all(not graphlet.shared for graphlet in engine.graph.graphlets)

    def test_shared_graphlets_marked(self, ab_query, cb_query, figure4_events):
        engine = _always_share_engine()
        engine.evaluate([ab_query, cb_query], figure4_events)
        shared = [graphlet for graphlet in engine.graph.graphlets if graphlet.shared]
        assert len(shared) == 1
        assert shared[0].event_type == "B"
        assert shared[0].size() == 4

    def test_dynamic_optimizer_records_decisions(self, ab_query, cb_query, figure4_events):
        optimizer = DynamicSharingOptimizer()
        engine = HamletEngine(optimizer)
        engine.evaluate([ab_query, cb_query], figure4_events)
        assert optimizer.statistics.decisions >= 1

    def test_lifetime_snapshot_counter_accumulates(self, ab_query, cb_query, figure4_events):
        engine = _always_share_engine()
        engine.evaluate([ab_query, cb_query], figure4_events)
        first = engine.total_snapshots_created()
        engine.evaluate([ab_query, cb_query], figure4_events)
        assert engine.total_snapshots_created() >= first


class TestLifecycle:
    def test_requires_start(self):
        engine = HamletEngine()
        with pytest.raises(ExecutionError):
            engine.process(Event("A", 1.0))
        with pytest.raises(ExecutionError):
            engine.results()
        with pytest.raises(ExecutionError):
            engine.start([])

    def test_irrelevant_events_ignored(self, ab_query, cb_query):
        engine = HamletEngine()
        engine.start([ab_query, cb_query])
        engine.process(Event("Z", 1.0))
        assert engine.results() == {ab_query.name: 0.0, cb_query.name: 0.0}

    def test_empty_partition(self, ab_query, cb_query):
        assert HamletEngine().evaluate([ab_query, cb_query], []) == {
            ab_query.name: 0.0,
            cb_query.name: 0.0,
        }

    def test_start_resets_optimizer_continuity(self, ab_query, cb_query, figure4_events):
        """A decision flip at a partition boundary is not a merge/split: the
        first burst of a fresh partition has no graphlet continuity with the
        previous partition's last burst."""
        from repro.optimizer.decisions import SharingDecision, SharingOptimizer

        class _Scripted(SharingOptimizer):
            def __init__(self, script):
                super().__init__()
                self._script = list(script)

            def _decide(self, stats):
                share = self._script.pop(0) if self._script else False
                names = frozenset(profile.query_name for profile in stats.profiles)
                if share and len(names) >= 2:
                    return SharingDecision(True, names, frozenset(), 1.0, "scripted")
                return SharingDecision(False, frozenset(), names, 0.0, "scripted")

        # Partition 1's only B-burst decision is "share"; partition 2's is
        # "don't share".  The flip crosses a partition boundary, so neither a
        # merge nor a split may be counted.
        engine = HamletEngine(_Scripted([True, False]))
        engine.evaluate([ab_query, cb_query], figure4_events)
        engine.evaluate([ab_query, cb_query], figure4_events)
        statistics = engine.optimizer.statistics
        assert statistics.decisions == 2
        assert statistics.shared_bursts == 1 and statistics.non_shared_bursts == 1
        assert statistics.merges == 0
        assert statistics.splits == 0

    def test_close_evicts_partition_state_and_keeps_templates(
        self, ab_query, cb_query, figure4_events
    ):
        engine = _always_share_engine()
        first = engine.evaluate([ab_query, cb_query], figure4_events)
        created = engine.snapshots_created()
        engine.close()
        assert engine.memory_units() == 0
        with pytest.raises(ExecutionError):
            engine.process(Event("B", 1.0))
        # Closed state is folded into the lifetime counter, and a restarted
        # (pooled) engine reproduces the partition exactly.
        assert engine.total_snapshots_created() == created
        assert engine.evaluate([ab_query, cb_query], figure4_events) == first
