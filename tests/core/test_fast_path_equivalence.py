"""Randomized cross-engine equivalence at scale.

The strongest correctness statement of this PR's hot-path overhaul: over
randomized streams — larger than the property suite in
``test_equivalence_properties.py`` — the O(1) predecessor-total fast path
(Equation 2 answered from per-type running totals) produces **bit-identical**
results to the predecessor-scan slow path, and both agree with GRETA and the
brute-force oracle.

All event attributes are small integers, so every sum is exact in float64
and exact ``==`` comparison between the fast and slow paths is meaningful —
*provided* the trend counts stay below 2**53.  Counts double per matched
Kleene event, so single-partition tests keep the matched-event count
bounded, and the truly large streams run through the
:class:`~repro.runtime.executor.WorkloadExecutor` with tumbling windows that
slice them into exactly-representable partitions (see docs/DESIGN.md,
"Fast/slow path selection").
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import BruteForceOracle
from repro.core import HamletEngine
from repro.greta import GretaEngine
from repro.optimizer import AlwaysShareOptimizer, DynamicSharingOptimizer, NeverShareOptimizer
from repro.query import (
    Query,
    Window,
    avg,
    count_events,
    kleene,
    parse_pattern,
    same_attributes,
    seq,
    sum_of,
)
from repro.query.predicates import attr_less
from repro.events import Event
from repro.runtime.executor import run_workload

TYPE_NAMES = ("A", "B", "C", "D", "X")

#: Tumbling window used for the large executor-driven streams: at one event
#: per time unit a partition holds ≤ 32 events, so every per-partition count
#: (≤ 2**33) and SUM (≤ 6 * 32 * 2**32) stays exactly representable.
EXACT_WINDOW = Window(32.0)


def make_stream(seed: int, size: int, *, negative_weight: float = 0.08) -> list[Event]:
    """A random in-order stream with integer-valued attributes."""
    rng = random.Random(seed)
    weights = [1.0, 3.0, 1.0, 1.0, negative_weight]
    events = []
    for index in range(size):
        type_name = rng.choices(TYPE_NAMES, weights=weights)[0]
        events.append(
            Event(
                type_name,
                float(index),
                {"v": float(rng.randint(0, 6)), "d": float(rng.randint(1, 2))},
            )
        )
    return events


def workload(
    *,
    with_edge_predicates: bool = True,
    with_negation: bool = True,
    window: Window | None = None,
) -> list[Query]:
    """Shared-Kleene workload mixing COUNT(*) / COUNT(E) / SUM / AVG.

    Covers every fast-path eligibility class: plain queries (always fast),
    local-predicate queries (fast; predicates act as filters), edge-predicate
    queries (never fast) and negation queries (fast until a negative event is
    stored).
    """
    window = window or Window(1_000_000.0)
    queries = [
        Query.build(seq("A", kleene("B")), window=window, name="fp_q1"),
        Query.build(seq("C", kleene("B")), window=window, name="fp_q2"),
        Query.build(
            seq("A", kleene("B")),
            predicates=[attr_less("v", 4.0, event_type="B")],
            window=window,
            name="fp_q3",
        ),
        Query.build(
            seq("C", kleene("B"), "D"), aggregate=sum_of("B", "v"), window=window, name="fp_q4"
        ),
        Query.build(
            seq("A", kleene("B")), aggregate=avg("B", "v"), window=window, name="fp_q5"
        ),
        Query.build(
            seq("D", kleene("B")), aggregate=count_events("B"), window=window, name="fp_q6"
        ),
    ]
    if with_edge_predicates:
        queries.append(
            Query.build(
                seq("A", kleene("B")),
                predicates=[same_attributes("d")],
                window=window,
                name="fp_q7",
            )
        )
    if with_negation:
        queries.append(
            Query.build(parse_pattern("SEQ(A, NOT X, B+)"), window=window, name="fp_q8")
        )
        queries.append(
            Query.build(parse_pattern("SEQ(C, B+, NOT X)"), window=window, name="fp_q9")
        )
    return queries


def run_fast(queries, events, optimizer_factory) -> dict[str, float]:
    return HamletEngine(optimizer_factory()).evaluate(queries, events)


def run_slow(queries, events, optimizer_factory) -> dict[str, float]:
    engine = HamletEngine(optimizer_factory(), fast_predecessor_totals=False)
    return engine.evaluate(queries, events)


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("size", (40, 56))
@pytest.mark.parametrize(
    "optimizer_factory",
    (DynamicSharingOptimizer, AlwaysShareOptimizer, NeverShareOptimizer),
    ids=("dynamic", "always-share", "never-share"),
)
def test_fast_path_bit_identical_to_slow_path(seed, size, optimizer_factory):
    """O(1) predecessor totals == predecessor scan, exactly, one partition."""
    events = make_stream(seed, size)
    queries = workload()
    fast = run_fast(queries, events, optimizer_factory)
    slow = run_slow(queries, events, optimizer_factory)
    assert fast == slow  # exact — integer-valued streams leave no FP slack


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("size", (150, 300, 600))
@pytest.mark.parametrize(
    "optimizer_factory",
    (DynamicSharingOptimizer, AlwaysShareOptimizer, NeverShareOptimizer),
    ids=("dynamic", "always-share", "never-share"),
)
def test_fast_path_bit_identical_on_windowed_large_streams(seed, size, optimizer_factory):
    """Bit-identical fast vs slow on large streams, windowed into partitions."""
    events = make_stream(seed, size)
    queries = workload(window=EXACT_WINDOW)
    fast = run_workload(queries, events, lambda: HamletEngine(optimizer_factory()))
    slow = run_workload(
        queries,
        events,
        lambda: HamletEngine(optimizer_factory(), fast_predecessor_totals=False),
    )
    assert fast.totals == slow.totals


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("size", (150, 300))
def test_fast_path_matches_greta_at_scale(seed, size):
    """HAMLET (any sharing policy, fast paths on) agrees with GRETA."""
    events = make_stream(seed, size)
    queries = workload(window=EXACT_WINDOW)
    greta = run_workload(queries, events, GretaEngine)
    for factory in (DynamicSharingOptimizer, AlwaysShareOptimizer, NeverShareOptimizer):
        hamlet = run_workload(queries, events, lambda: HamletEngine(factory()))
        assert hamlet.totals == pytest.approx(greta.totals)


@pytest.mark.parametrize("seed", range(6))
def test_all_engines_match_brute_force_on_medium_streams(seed):
    """Fast path, slow path and GRETA all agree with exhaustive enumeration."""
    events = make_stream(seed, 18, negative_weight=0.5)
    queries = workload()
    oracle = BruteForceOracle(max_events=32).evaluate(queries, events)
    assert GretaEngine().evaluate(queries, events) == pytest.approx(oracle)
    assert run_fast(queries, events, AlwaysShareOptimizer) == pytest.approx(oracle)
    assert run_slow(queries, events, AlwaysShareOptimizer) == pytest.approx(oracle)
    assert run_fast(queries, events, NeverShareOptimizer) == pytest.approx(oracle)


@pytest.mark.parametrize("seed", range(4))
def test_negation_arms_and_disarms_fast_path_consistently(seed):
    """Streams dense in negated events exercise the fast->slow fallback."""
    events = make_stream(seed, 48, negative_weight=2.0)
    queries = workload(with_edge_predicates=False)
    for factory in (AlwaysShareOptimizer, NeverShareOptimizer):
        fast = run_fast(queries, events, factory)
        slow = run_slow(queries, events, factory)
        assert fast == slow


def test_executor_type_filter_is_transparent():
    """Events of types no query references never change executor totals."""
    events = make_stream(11, 200)
    noisy: list[Event] = []
    for index, event in enumerate(events):
        noisy.append(event)
        if index % 3 == 0:
            noisy.append(Event("Noise", event.time, {"v": 1.0, "d": 1.0}))
    queries = workload(window=EXACT_WINDOW)
    plain = run_workload(queries, events, lambda: HamletEngine(DynamicSharingOptimizer()))
    with_noise = run_workload(queries, noisy, lambda: HamletEngine(DynamicSharingOptimizer()))
    assert plain.totals == with_noise.totals


def test_out_of_order_stream_falls_back_to_slow_path():
    """An out-of-order stream must not corrupt fast-path totals."""
    events = [
        Event("A", 0.0, {"v": 1.0, "d": 1.0}),
        Event("B", 5.0, {"v": 2.0, "d": 1.0}),
        Event("C", 1.0, {"v": 1.0, "d": 1.0}),  # arrives late
        Event("B", 6.0, {"v": 3.0, "d": 1.0}),
    ]
    queries = workload(with_edge_predicates=False, with_negation=False)
    fast = run_fast(queries, events, NeverShareOptimizer)
    slow = run_slow(queries, events, NeverShareOptimizer)
    assert fast == slow
