"""Unit and property tests for snapshot expressions and the snapshot table."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.expression import SnapshotCoefficient, SnapshotExpression
from repro.core.snapshot import SnapshotLevel, SnapshotTable
from repro.errors import SharingError
from repro.greta.aggregators import AggregateVector


def _vector(count, *measures):
    return AggregateVector(float(count), tuple(float(m) for m in measures))


class TestSnapshotCoefficient:
    def test_add(self):
        a = SnapshotCoefficient(2.0, (1.0,))
        b = SnapshotCoefficient(3.0, (0.5,))
        combined = a.add(b)
        assert combined.weight == 5.0
        assert combined.cross == (1.5,)

    def test_with_contribution(self):
        coefficient = SnapshotCoefficient(4.0, (1.0,))
        updated = coefficient.with_contribution((2.0,))
        assert updated.weight == 4.0
        assert updated.cross == (1.0 + 2.0 * 4.0,)

    def test_apply(self):
        coefficient = SnapshotCoefficient(3.0, (2.0,))
        value = _vector(5, 7)
        applied = coefficient.apply(value)
        assert applied.count == 15.0
        assert applied.measures == (3.0 * 7 + 2.0 * 5,)


class TestSnapshotExpression:
    def test_identity_and_evaluate(self):
        expression = SnapshotExpression.identity("x", 1)
        value = expression.evaluate(lambda _: _vector(4, 9))
        assert value.count == 4.0
        assert value.measures == (9.0,)

    def test_add_merges_coefficients(self):
        x = SnapshotExpression.identity("x", 0)
        doubled = x.add(x)
        assert doubled.coefficients["x"].weight == 2.0
        assert doubled.size() == 1

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(SharingError):
            SnapshotExpression.identity("x", 1).add(SnapshotExpression.identity("y", 2))
        with pytest.raises(SharingError):
            SnapshotExpression.identity("x", 1).with_event_contribution((1.0, 2.0))
        with pytest.raises(SharingError):
            SnapshotExpression(1, {"x": SnapshotCoefficient(1.0, ())})

    def test_table3_doubling_propagation(self):
        """Table 3: counts of b3..b6 are x, 2x, 4x, 8x."""
        dimension = 0
        running = SnapshotExpression.zero(dimension)
        weights = []
        for _ in range(4):
            expr = SnapshotExpression.identity("x", dimension).add(running)
            weights.append(expr.coefficients["x"].weight)
            running = running.add(expr)
        assert weights == [1.0, 2.0, 4.0, 8.0]

    def test_event_contribution_tracks_measures(self):
        expression = SnapshotExpression.identity("x", 1).with_event_contribution((5.0,))
        value = expression.evaluate(lambda _: _vector(2, 0))
        # One measure contribution of 5 per trend; two trends flow through x.
        assert value.count == 2.0
        assert value.measures == (10.0,)

    @settings(max_examples=50, deadline=None)
    @given(
        weights=st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=5),
        count=st.floats(min_value=0, max_value=100),
        measure=st.floats(min_value=0, max_value=100),
    )
    def test_linearity_property(self, weights, count, measure):
        """Evaluating a sum of expressions equals the sum of evaluations."""
        expressions = [
            SnapshotExpression(1, {"x": SnapshotCoefficient(w, (0.0,))}) for w in weights
        ]
        total = SnapshotExpression.zero(1)
        for expression in expressions:
            total = total.add(expression)
        value = _vector(count, measure)
        combined = total.evaluate(lambda _: value)
        summed_count = sum(e.evaluate(lambda _: value).count for e in expressions)
        summed_measure = sum(e.evaluate(lambda _: value).measures[0] for e in expressions)
        assert combined.count == pytest.approx(summed_count)
        assert combined.measures[0] == pytest.approx(summed_measure)


class TestSnapshotTable:
    def test_create_and_lookup(self):
        table = SnapshotTable(dimension=1)
        snapshot = table.create(
            SnapshotLevel.GRAPHLET, "B", {"q1": _vector(2, 3), "q2": _vector(1, 0)}
        )
        assert snapshot.snapshot_id.startswith("x")
        assert table.value(snapshot.snapshot_id, "q1").count == 2.0
        assert table.value(snapshot.snapshot_id, "q3").is_zero()
        assert table.created_count(SnapshotLevel.GRAPHLET) == 1
        assert table.created_count() == 1
        assert table.entry_count() == 2

    def test_event_level_ids(self):
        table = SnapshotTable(dimension=0)
        snapshot = table.create(SnapshotLevel.EVENT, "B", {"q1": _vector(5)})
        assert snapshot.snapshot_id.startswith("z")
        assert table.snapshot(snapshot.snapshot_id).level is SnapshotLevel.EVENT

    def test_unknown_snapshot_rejected(self):
        table = SnapshotTable(dimension=0)
        with pytest.raises(SharingError):
            table.value("nope", "q1")
        with pytest.raises(SharingError):
            table.snapshot("nope")

    def test_dimension_checked(self):
        table = SnapshotTable(dimension=1)
        with pytest.raises(SharingError):
            table.create(SnapshotLevel.GRAPHLET, "B", {"q1": _vector(1)})

    def test_memory_units(self):
        table = SnapshotTable(dimension=0)
        table.create(SnapshotLevel.GRAPHLET, "B", {"q1": _vector(1), "q2": _vector(2)})
        assert table.memory_units() == 1 + 2
