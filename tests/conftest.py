"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.events import Event, EventStream
from repro.query import Query, Window, count_trends, kleene, seq


def make_events(spec: str, *, spacing: float = 1.0, start: float = 0.0, **payloads) -> list[Event]:
    """Build a list of events from a compact spec string.

    ``spec`` is a whitespace-separated list of event type names; events are
    timestamped ``start, start + spacing, ...`` in order.  Keyword arguments
    of the form ``<lowercased type name>=dict(...)`` attach the same payload
    to every event of that type, e.g. ``make_events("A B B", b={"v": 2.0})``.
    """
    events = []
    for index, type_name in enumerate(spec.split()):
        payload = payloads.get(type_name.lower(), {})
        events.append(
            Event(event_type=type_name, time=start + index * spacing, payload=dict(payload))
        )
    return events


@pytest.fixture
def ab_query() -> Query:
    """The paper's running example q1: ``SEQ(A, B+)`` counting trends."""
    return Query.build(
        seq("A", kleene("B")),
        aggregate=count_trends(),
        window=Window(1000.0),
        name="q_ab",
    )


@pytest.fixture
def cb_query() -> Query:
    """The paper's running example q2: ``SEQ(C, B+)`` counting trends."""
    return Query.build(
        seq("C", kleene("B")),
        aggregate=count_trends(),
        window=Window(1000.0),
        name="q_cb",
    )


@pytest.fixture
def figure4_events() -> list[Event]:
    """The stream of Figure 4: a1, a2, c1 then b3, b4, b5, b6 (one pane).

    Timestamps keep the arrival order of the paper's example: the A/C events
    precede the burst of B events.
    """
    return make_events("A A C B B B B")


@pytest.fixture
def stream(figure4_events) -> EventStream:
    return EventStream(figure4_events, name="figure4")
