"""Tests for query-set choice (Theorems 4.1/4.2) and the sharing optimizers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.optimizer import (
    AlwaysShareOptimizer,
    DynamicSharingOptimizer,
    NeverShareOptimizer,
    StaticPlanOptimizer,
    choose_query_set,
    exhaustive_best_plan,
)
from repro.optimizer.query_set import plan_cost
from repro.optimizer.statistics import BurstStatistics, QueryBurstProfile


def _stats(profiles, *, burst_size=6, events_in_window=40, graphlet_size=8,
           snapshots_propagated=1, graphlet_snapshots_needed=1) -> BurstStatistics:
    return BurstStatistics(
        event_type="B",
        burst_size=burst_size,
        events_in_window=events_in_window,
        graphlet_size=graphlet_size,
        snapshots_propagated=snapshots_propagated,
        graphlet_snapshots_needed=graphlet_snapshots_needed,
        profiles=tuple(profiles),
        types_per_query=2,
    )


class TestChooseQuerySet:
    def test_snapshot_free_queries_are_shared(self):
        stats = _stats(
            [
                QueryBurstProfile("q1", introduces_snapshots=False),
                QueryBurstProfile("q2", introduces_snapshots=False),
                QueryBurstProfile("q3", introduces_snapshots=False),
            ]
        )
        choice = choose_query_set(stats)
        assert choice.shared == {"q1", "q2", "q3"}
        assert not choice.non_shared

    def test_expensive_snapshot_query_excluded(self):
        stats = _stats(
            [
                QueryBurstProfile("q1", introduces_snapshots=False),
                QueryBurstProfile("q2", introduces_snapshots=False),
                QueryBurstProfile("q3", introduces_snapshots=True, expected_snapshots=50.0),
            ]
        )
        choice = choose_query_set(stats)
        assert "q3" in choice.non_shared
        assert choice.shared == {"q1", "q2"}

    def test_single_candidate_never_shares(self):
        stats = _stats([QueryBurstProfile("q1", introduces_snapshots=False)])
        choice = choose_query_set(stats)
        assert not choice.shared

    @settings(max_examples=80, deadline=None)
    @given(
        expected=st.lists(st.floats(min_value=0.0, max_value=60.0), min_size=1, max_size=6),
        burst_size=st.integers(min_value=1, max_value=30),
        events=st.integers(min_value=1, max_value=200),
        graphlet=st.integers(min_value=1, max_value=64),
    )
    def test_pruned_choice_is_never_worse_than_exhaustive(self, expected, burst_size, events, graphlet):
        """The pruning principles never lose optimality (Theorems 4.1, 4.2)."""
        profiles = [
            QueryBurstProfile(f"q{i}", introduces_snapshots=value > 0, expected_snapshots=value)
            for i, value in enumerate(expected)
        ]
        stats = _stats(
            profiles, burst_size=burst_size, events_in_window=events, graphlet_size=graphlet
        )
        pruned = choose_query_set(stats)
        exhaustive = exhaustive_best_plan(stats)
        assert pruned.total_cost == pytest.approx(exhaustive.total_cost)
        assert plan_cost(stats, pruned.shared) == pytest.approx(pruned.total_cost)


class TestDynamicOptimizer:
    def test_positive_benefit_shares(self):
        stats = _stats(
            [
                QueryBurstProfile("q1", introduces_snapshots=False, predecessor_types=2),
                QueryBurstProfile("q2", introduces_snapshots=False, predecessor_types=2),
            ],
            burst_size=4, events_in_window=7, graphlet_size=4,
        )
        decision = DynamicSharingOptimizer().decide(stats)
        assert decision.share
        assert decision.shared_queries == {"q1", "q2"}
        assert decision.estimated_benefit > 0

    def test_negative_benefit_does_not_share(self):
        # Equation 10's setting: maintaining two propagated snapshots costs
        # more than re-processing the burst per query.
        stats = _stats(
            [
                QueryBurstProfile("q1", introduces_snapshots=True, expected_snapshots=1.0,
                                  predecessor_types=2),
                QueryBurstProfile("q2", introduces_snapshots=True, expected_snapshots=1.0,
                                  predecessor_types=2),
            ],
            burst_size=4, events_in_window=11, graphlet_size=8, snapshots_propagated=2,
        )
        decision = DynamicSharingOptimizer().decide(stats)
        assert not decision.share

    def test_single_query_never_shares(self):
        stats = _stats([QueryBurstProfile("q1", False)])
        decision = DynamicSharingOptimizer().decide(stats)
        assert not decision.share
        assert "fewer than two" in decision.reason

    def test_statistics_track_merges_and_splits(self):
        optimizer = DynamicSharingOptimizer()
        share_stats = _stats(
            [QueryBurstProfile("q1", False), QueryBurstProfile("q2", False)],
            burst_size=4, events_in_window=7, graphlet_size=4,
        )
        split_stats = _stats(
            [
                QueryBurstProfile("q1", True, expected_snapshots=40.0),
                QueryBurstProfile("q2", True, expected_snapshots=40.0),
            ],
            burst_size=2, events_in_window=5, graphlet_size=4,
        )
        assert optimizer.decide(share_stats).share
        assert not optimizer.decide(split_stats).share
        assert optimizer.decide(share_stats).share
        stats = optimizer.statistics
        assert stats.decisions == 3
        assert stats.shared_bursts == 2
        assert stats.splits == 1
        assert stats.merges == 1
        assert 0.0 < stats.shared_fraction < 1.0
        assert stats.decision_seconds >= 0.0

    def test_begin_partition_resets_merge_split_continuity(self):
        """A decision flip *across* partitions is neither a merge nor a split."""
        optimizer = DynamicSharingOptimizer()
        share_stats = _stats(
            [QueryBurstProfile("q1", False), QueryBurstProfile("q2", False)],
            burst_size=4, events_in_window=7, graphlet_size=4,
        )
        split_stats = _stats(
            [
                QueryBurstProfile("q1", True, expected_snapshots=40.0),
                QueryBurstProfile("q2", True, expected_snapshots=40.0),
            ],
            burst_size=2, events_in_window=5, graphlet_size=4,
        )
        assert optimizer.decide(share_stats).share
        optimizer.begin_partition()
        # The first burst of the new partition flips the decision, but there
        # is no shared graphlet to split in a fresh partition.
        assert not optimizer.decide(split_stats).share
        assert optimizer.statistics.splits == 0
        assert optimizer.statistics.merges == 0
        # Within the new partition the continuity applies again.
        assert optimizer.decide(share_stats).share
        assert optimizer.statistics.merges == 1

    def test_statistics_merge_folds_counters(self):
        first = DynamicSharingOptimizer()
        second = DynamicSharingOptimizer()
        share_stats = _stats(
            [QueryBurstProfile("q1", False), QueryBurstProfile("q2", False)],
            burst_size=4, events_in_window=7, graphlet_size=4,
        )
        first.decide(share_stats)
        second.decide(share_stats)
        second.decide(share_stats)
        merged = first.statistics
        merged.merge(second.statistics)
        assert merged.decisions == 3
        assert merged.shared_bursts == 3


class TestStaticOptimizers:
    def _two_query_stats(self):
        return _stats(
            [QueryBurstProfile("q1", False), QueryBurstProfile("q2", False)],
            burst_size=4, events_in_window=7, graphlet_size=4,
        )

    def test_always_share(self):
        decision = AlwaysShareOptimizer().decide(self._two_query_stats())
        assert decision.share
        assert decision.shared_queries == {"q1", "q2"}

    def test_never_share(self):
        decision = NeverShareOptimizer().decide(self._two_query_stats())
        assert not decision.share

    def test_static_plan_fixed_after_first_burst(self):
        optimizer = StaticPlanOptimizer()
        first = optimizer.decide(self._two_query_stats())
        assert first.share
        # Even a burst where sharing is clearly bad keeps the compile-time plan.
        bad_stats = _stats(
            [
                QueryBurstProfile("q1", True, expected_snapshots=100.0),
                QueryBurstProfile("q2", True, expected_snapshots=100.0),
            ],
            burst_size=2, events_in_window=5, graphlet_size=64, snapshots_propagated=5,
        )
        second = optimizer.decide(bad_stats)
        assert second.share
        assert "fixed" in second.reason

    def test_always_share_single_candidate(self):
        stats = _stats([QueryBurstProfile("q1", False)])
        assert not AlwaysShareOptimizer().decide(stats).share

    def test_static_plan_is_per_candidate_set_not_per_type(self):
        """Two independent candidate sets of one event type fix one plan each.

        The multi-window runtime consults the optimizer once per query
        class per burst; the first class's fixed plan must not be recycled
        (restricted to a disjoint candidate set => share=False forever) for
        every other class of the same type.
        """
        optimizer = StaticPlanOptimizer()
        first = optimizer.decide(self._two_query_stats())
        assert first.share and first.shared_queries == {"q1", "q2"}
        other_class = _stats(
            [QueryBurstProfile("q3", False), QueryBurstProfile("q4", False)],
            burst_size=4, events_in_window=7, graphlet_size=4,
        )
        second = optimizer.decide(other_class)
        assert second.share
        assert second.shared_queries == {"q3", "q4"}


class TestDecisionContinuityPerPlanKey:
    def test_interleaved_candidate_sets_do_not_fake_merges_or_splits(self):
        """Merge/split counters track each (type, candidate set) stream.

        One burst can carry several per-class decisions for the same event
        type; a class that stably shares interleaved with a class that
        stably does not share must record zero merges and zero splits —
        keyed by event type alone, every flush would count one of each.
        """
        optimizer = AlwaysShareOptimizer()
        sharing = _stats(
            [QueryBurstProfile("q1", False), QueryBurstProfile("q2", False)],
            burst_size=4, events_in_window=7, graphlet_size=4,
        )
        single = _stats([QueryBurstProfile("q3", False)])  # never shares (k=1)
        for _ in range(5):
            assert optimizer.decide(sharing).share
            assert not optimizer.decide(single).share
        assert optimizer.statistics.merges == 0
        assert optimizer.statistics.splits == 0
        assert optimizer.statistics.decisions == 10

    def test_real_transition_still_counts(self):
        optimizer = DynamicSharingOptimizer()
        profiles = [QueryBurstProfile("q1", False), QueryBurstProfile("q2", False)]
        good = _stats(profiles, burst_size=8, events_in_window=40, graphlet_size=8)
        bad = _stats(profiles, burst_size=1, events_in_window=1, graphlet_size=64,
                     graphlet_snapshots_needed=1)
        assert optimizer.decide(good).share
        assert not optimizer.decide(bad).share
        assert optimizer.decide(good).share
        assert optimizer.statistics.splits == 1
        assert optimizer.statistics.merges == 1
