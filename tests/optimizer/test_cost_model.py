"""Tests for the sharing cost model, including the paper's worked examples."""

from __future__ import annotations

import pytest

from repro.errors import SharingError
from repro.optimizer import benefit, non_shared_cost, shared_cost
from repro.optimizer.cost_model import (
    CostModel,
    window_non_shared_cost,
    window_shared_cost,
)
from repro.optimizer.statistics import BurstStatistics, QueryBurstProfile


class TestPaperWorkedExamples:
    """Equations 9, 10 and 11 of Section 4.2, reproduced verbatim."""

    def test_equation9_decision_to_share_b3(self):
        shared = shared_cost(
            burst_size=4, events_in_window=7, graphlet_size=4, queries=2,
            snapshots_created=1, snapshots_propagated=1, types_per_query=2,
        )
        non_shared = non_shared_cost(burst_size=4, events_in_window=7, graphlet_size=4, queries=2)
        assert shared == 44.0
        assert non_shared == 56.0
        assert non_shared - shared == 12.0

    def test_equation10_decision_to_split_b3(self):
        shared = shared_cost(
            burst_size=4, events_in_window=11, graphlet_size=8, queries=2,
            snapshots_created=1, snapshots_propagated=2, types_per_query=2,
        )
        non_shared = non_shared_cost(burst_size=4, events_in_window=11, graphlet_size=8, queries=2)
        assert shared == 120.0
        assert non_shared == 88.0
        assert non_shared - shared == -32.0

    def test_equation11_decision_to_merge_b6(self):
        shared = shared_cost(
            burst_size=4, events_in_window=15, graphlet_size=4, queries=2,
            snapshots_created=1, snapshots_propagated=1, types_per_query=2,
        )
        non_shared = non_shared_cost(burst_size=4, events_in_window=15, graphlet_size=4, queries=2)
        assert shared == 76.0
        assert non_shared == 120.0
        assert benefit(
            burst_size=4, events_in_window=15, graphlet_size=4, queries=2,
            snapshots_created=1, snapshots_propagated=1, types_per_query=2,
        ) == 44.0


class TestCostModelProperties:
    def test_more_queries_increase_non_shared_cost_linearly(self):
        low = non_shared_cost(burst_size=10, events_in_window=50, graphlet_size=10, queries=2)
        high = non_shared_cost(burst_size=10, events_in_window=50, graphlet_size=10, queries=4)
        assert high == pytest.approx(2 * low)

    def test_more_snapshots_increase_shared_cost(self):
        cheap = shared_cost(10, 50, 10, 4, snapshots_created=1, snapshots_propagated=1)
        pricey = shared_cost(10, 50, 10, 4, snapshots_created=5, snapshots_propagated=3)
        assert pricey > cheap

    def test_negative_inputs_rejected(self):
        with pytest.raises(SharingError):
            shared_cost(-1, 10, 10, 2, 1, 1)
        with pytest.raises(SharingError):
            non_shared_cost(10, 10, 10, -2)

    def test_refined_variant_adds_log_terms(self):
        simple = non_shared_cost(8, 100, 16, 3, variant="simple")
        refined = non_shared_cost(8, 100, 16, 3, variant="refined")
        assert refined == pytest.approx(simple + 3 * 8 * 4)  # log2(16) = 4

    def test_window_level_model(self):
        assert window_non_shared_cost(queries=3, events=10) == 300.0
        assert window_shared_cost(queries=3, events=10, snapshots=2, graphlet_size=5,
                                  types_per_query=2) == 260.0


class TestCostModelOnStatistics:
    def _stats(self, **overrides):
        defaults = dict(
            event_type="B",
            burst_size=4,
            events_in_window=7,
            graphlet_size=4,
            snapshots_propagated=1,
            graphlet_snapshots_needed=1,
            profiles=(
                QueryBurstProfile("q1", introduces_snapshots=False, predecessor_types=2),
                QueryBurstProfile("q2", introduces_snapshots=False, predecessor_types=2),
            ),
            types_per_query=2,
        )
        defaults.update(overrides)
        return BurstStatistics(**defaults)

    def test_benefit_matches_equation9(self):
        model = CostModel()
        stats = self._stats()
        assert model.shared(stats) == 44.0
        assert model.non_shared(stats) == 56.0
        assert model.benefit(stats) == 12.0

    def test_restrict_drops_profiles(self):
        stats = self._stats()
        restricted = stats.restrict(frozenset({"q1"}))
        assert restricted.query_count == 1
        assert stats.query_count == 2

    def test_snapshots_created_estimate(self):
        stats = self._stats(
            profiles=(
                QueryBurstProfile("q1", True, expected_snapshots=2.0),
                QueryBurstProfile("q2", False),
            )
        )
        assert stats.snapshots_created == pytest.approx(3.0)
        assert stats.predecessor_types == 1
