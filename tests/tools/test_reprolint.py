"""Fixture-based tests for the reprolint invariant checker.

Every rule gets at least one *bad* fixture (a seeded violation the rule
must flag) and one *good* fixture (idiomatic code the rule must not
flag), plus suppression-comment handling, CLI exit codes, and a
self-check that the shipped ``src/repro`` tree is violation-free with
zero suppressions.

Scoped rules match against *package-relative* paths, so fixtures pass
relpaths shaped like the shipped tree (``repro/runtime/mod.py``).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from reprolint import ALL_RULES, lint_paths, lint_source
from reprolint.cli import main
from reprolint.framework import normalize_relpath, parse_suppressions
from reprolint.rules.atomicity import AtomicCheckpointWriteRule
from reprolint.rules.blocks import EventConstructionRule
from reprolint.rules.determinism import NondeterminismRule, UnstableIdentityOrderingRule
from reprolint.rules.exceptions import ExceptionDisciplineRule
from reprolint.rules.imports import NumpyImportRule
from reprolint.rules.ordering import RawOrderComparisonRule
from reprolint.rules.process import ProcessBoundaryCallableRule
from reprolint.rules.resources import SharedMemoryUnlinkRule
from reprolint.rules.slots import SlotsRule
from reprolint.rules.windows import FloatWindowIndexRule

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_rule(rule, source: str, relpath: str):
    """Lint dedented ``source`` at ``relpath`` with a single rule."""
    return lint_source(textwrap.dedent(source), relpath, rules=[rule])


def rule_ids(violations) -> list[str]:
    return [violation.rule_id for violation in violations]


# --------------------------------------------------------------------- #
# RL001 — hash()/id()/repr-keyed ordering on routing/merge paths
# --------------------------------------------------------------------- #
class TestRL001:
    RULE = UnstableIdentityOrderingRule()

    def test_bad_hash_and_id_routing(self):
        bad = """
            def route(key, shards):
                return hash(key) % shards

            def owner(obj):
                return id(obj)
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/router.py")
        assert rule_ids(violations) == ["RL001", "RL001"]
        assert "stable_shard_hash" in violations[0].message

    def test_bad_repr_keyed_sorts(self):
        bad = """
            def merge(units, groups):
                ordered = sorted(units.items(), key=lambda item: repr(item[0]))
                groups.sort(key=str)
                top = max(groups, key=lambda g: str(g))
                return ordered, top
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/merge.py")
        assert rule_ids(violations) == ["RL001", "RL001", "RL001"]

    def test_good_typed_sort_key(self):
        good = """
            def merge(units):
                return sorted(units.items(), key=lambda item: item[0])

            def order(groups):
                groups.sort(key=lambda g: (g.size, g.slide))
                return groups
            """
        assert run_rule(self.RULE, good, "repro/runtime/merge.py") == []

    def test_out_of_scope_path_not_flagged(self):
        bad = "value = hash('name')\n"
        assert run_rule(self.RULE, bad, "repro/datasets/synthetic.py") == []


# --------------------------------------------------------------------- #
# RL002 — float arithmetic on window-instance indices
# --------------------------------------------------------------------- #
class TestRL002:
    RULE = FloatWindowIndexRule()

    def test_bad_division_over_slide(self):
        bad = """
            def index_of(timestamp, window):
                return int(timestamp / window.slide)
            """
        violations = run_rule(self.RULE, bad, "repro/greta/graph.py")
        assert rule_ids(violations) == ["RL002"]
        assert "float" in violations[0].message

    def test_bad_division_inside_helper_call(self):
        bad = """
            def covering(window, timestamp):
                return window.instance_indices_covering(timestamp / 2.0)
            """
        violations = run_rule(self.RULE, bad, "repro/core/engine.py")
        assert rule_ids(violations) == ["RL002"]

    def test_good_integer_index_math(self):
        good = """
            def start_of(index, window):
                return index * window.slide

            def covering(window, timestamp):
                return window.instance_indices_covering(timestamp)
            """
        assert run_rule(self.RULE, good, "repro/core/engine.py") == []

    def test_windows_module_is_excluded(self):
        bad = """
            def _floor_index(self, timestamp):
                return int(timestamp / self.slide)
            """
        assert run_rule(self.RULE, bad, "repro/query/windows.py") == []


# --------------------------------------------------------------------- #
# RL003 — process-boundary callables must be importable
# --------------------------------------------------------------------- #
class TestRL003:
    RULE = ProcessBoundaryCallableRule()

    def test_bad_lambda_factory(self):
        bad = """
            def drive(workload, stream):
                return run_sharded(workload, stream, engine_factory=lambda: Engine())
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/driver.py")
        assert rule_ids(violations) == ["RL003"]
        assert "lambda" in violations[0].message

    def test_bad_nested_function_factory(self):
        bad = """
            def drive(workload):
                def make_engine():
                    return Engine()
                return ShardedStreamingExecutor(workload, engine_factory=make_engine)
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/driver.py")
        assert rule_ids(violations) == ["RL003"]
        assert "make_engine" in violations[0].message

    def test_bad_boundary_keyword_anywhere(self):
        bad = """
            def configure(runner):
                runner.setup(kernel_factory=lambda: make_kernel())
            """
        violations = run_rule(self.RULE, bad, "repro/bench/run.py")
        assert rule_ids(violations) == ["RL003"]

    def test_good_module_level_factory(self):
        good = """
            def make_engine():
                return Engine()

            def drive(workload, stream):
                return run_sharded(workload, stream, engine_factory=make_engine)
            """
        assert run_rule(self.RULE, good, "repro/runtime/driver.py") == []

    def test_good_non_boundary_lambda(self):
        good = """
            def wait(ring, deadline):
                return ring.acquire(on_stall=lambda: check_workers(deadline))
            """
        assert run_rule(self.RULE, good, "repro/runtime/sharding.py") == []


# --------------------------------------------------------------------- #
# RL004 — SharedMemory(create=True) needs an immediate unlink guard
# --------------------------------------------------------------------- #
class TestRL004:
    RULE = SharedMemoryUnlinkRule()

    def test_bad_statement_between_create_and_guard(self):
        # The PR 6 incident shape: Pipe() can raise between creation and
        # the finalize registration, leaking the segment.
        bad = """
            def open_ring(size):
                segment = SharedMemory(create=True, size=size)
                reader, writer = Pipe(duplex=False)
                guard = weakref.finalize(segment, segment.unlink)
                return segment, reader, writer, guard
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/transport.py")
        assert rule_ids(violations) == ["RL004"]

    def test_bad_no_guard_at_all(self):
        bad = """
            def open_segment(size):
                return SharedMemory(create=True, size=size)
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/transport.py")
        assert rule_ids(violations) == ["RL004"]

    def test_good_finalize_next_statement(self):
        good = """
            def open_ring(size):
                segment = SharedMemory(create=True, size=size)
                guard = weakref.finalize(segment, _unlink_quietly, segment)
                reader, writer = Pipe(duplex=False)
                return segment, guard, reader, writer
            """
        assert run_rule(self.RULE, good, "repro/runtime/transport.py") == []

    def test_good_try_finally_unlink(self):
        good = """
            def with_segment(size):
                try:
                    segment = SharedMemory(create=True, size=size)
                    return use(segment)
                finally:
                    _unlink_quietly(segment)
            """
        assert run_rule(self.RULE, good, "repro/runtime/transport.py") == []

    def test_good_attach_without_create(self):
        good = """
            def attach(name):
                return SharedMemory(name=name)
            """
        assert run_rule(self.RULE, good, "repro/runtime/transport.py") == []


# --------------------------------------------------------------------- #
# RL005 — numpy quarantined behind the kernel backend seam
# --------------------------------------------------------------------- #
class TestRL005:
    RULE = NumpyImportRule()

    def test_bad_top_level_import(self):
        bad = "import numpy as np\n"
        violations = run_rule(self.RULE, bad, "repro/core/engine.py")
        assert rule_ids(violations) == ["RL005"]

    def test_bad_import_probe_in_try(self):
        bad = """
            try:
                from numpy import ndarray
            except ImportError:
                ndarray = None
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/transport.py")
        assert rule_ids(violations) == ["RL005"]

    def test_good_function_scoped_import(self):
        good = """
            def load_backend():
                import numpy
                return numpy
            """
        assert run_rule(self.RULE, good, "repro/core/kernels.py") == []

    def test_good_type_checking_gate(self):
        good = """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                import numpy
            """
        assert run_rule(self.RULE, good, "repro/core/kernels.py") == []

    def test_kernels_numpy_module_is_excluded(self):
        bad = "import numpy\n"
        assert run_rule(self.RULE, bad, "repro/core/kernels_numpy.py") == []


# --------------------------------------------------------------------- #
# RL006 — clocks, global RNG, set iteration on result paths
# --------------------------------------------------------------------- #
class TestRL006:
    RULE = NondeterminismRule()

    def test_bad_wall_clock_and_global_rng(self):
        bad = """
            def stamp(report):
                report.created = time.time()
                report.jitter = random.random()
                return report
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/report.py")
        assert rule_ids(violations) == ["RL006", "RL006"]

    def test_bad_set_iteration(self):
        bad = """
            def merge_keys(left, right):
                out = []
                for key in set(left) | set(right):
                    out.append(key)
                return out

            def collect(keys):
                return [k for k in {normalize(k) for k in keys}]
            """
        violations = run_rule(self.RULE, bad, "repro/core/merge.py")
        # The for-loop iterates a BinOp of sets (not flagged — only the
        # direct set expression shape is), but the comprehension over a
        # SetComp is.
        assert "RL006" in rule_ids(violations)

    def test_bad_datetime_now(self):
        bad = """
            def label(run):
                return datetime.datetime.now().isoformat()
            """
        violations = run_rule(self.RULE, bad, "repro/greta/runs.py")
        assert rule_ids(violations) == ["RL006"]

    def test_good_seeded_rng_and_monotonic_clock(self):
        good = """
            def generate(seed):
                rng = random.Random(seed)
                return rng.random()

            def measure():
                return time.perf_counter()

            def ordered(keys):
                return list(dict.fromkeys(keys))
            """
        assert run_rule(self.RULE, good, "repro/runtime/report.py") == []

    def test_good_sorted_iteration(self):
        good = """
            def merge_keys(left, right):
                return sorted(set(left) | set(right))
            """
        assert run_rule(self.RULE, good, "repro/core/merge.py") == []

    def test_out_of_scope_bench_timing_allowed(self):
        good = "started = time.time()\n"
        assert run_rule(self.RULE, good, "repro/bench/harness.py") == []


# --------------------------------------------------------------------- #
# RL007 — __slots__ on per-event classes
# --------------------------------------------------------------------- #
class TestRL007:
    RULE = SlotsRule()

    def test_bad_plain_class_without_slots(self):
        bad = """
            class Event:
                def __init__(self, event_type, time):
                    self.event_type = event_type
                    self.time = time
            """
        violations = run_rule(self.RULE, bad, "repro/events/event.py")
        assert rule_ids(violations) == ["RL007"]
        assert "__slots__" in violations[0].message

    def test_bad_dataclass_without_slots(self):
        bad = """
            @dataclass(frozen=True)
            class Snapshot:
                value: float
            """
        violations = run_rule(self.RULE, bad, "repro/core/snapshot.py")
        assert rule_ids(violations) == ["RL007"]
        assert "slots=True" in violations[0].message

    def test_good_slotted_variants(self):
        good = """
            class EventStream:
                __slots__ = ("name", "_events")

            @dataclass(frozen=True, slots=True)
            class Event:
                time: float
            """
        assert run_rule(self.RULE, good, "repro/events/stream.py") == []

    def test_exempt_bases(self):
        good = """
            class Kind(Enum):
                A = 1

            class StreamError(ReproError):
                pass

            class Sink(Protocol):
                def push(self, event): ...
            """
        assert run_rule(self.RULE, good, "repro/events/kinds.py") == []

    def test_out_of_scope_path_not_flagged(self):
        bad = """
            class PlanCache:
                pass
            """
        assert run_rule(self.RULE, bad, "repro/optimizer/cache.py") == []


# --------------------------------------------------------------------- #
# RL008 — exception discipline in worker loops
# --------------------------------------------------------------------- #
class TestRL008:
    RULE = ExceptionDisciplineRule()

    def test_bad_bare_except(self):
        bad = """
            def drain(queue):
                try:
                    return queue.get()
                except:
                    return None
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/sharding.py")
        assert rule_ids(violations) == ["RL008"]

    def test_bad_swallowing_broad_handler(self):
        bad = """
            def cleanup(segment):
                try:
                    segment.close()
                except Exception:
                    pass
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/transport.py")
        assert rule_ids(violations) == ["RL008"]

    def test_bad_worker_loop_not_reporting(self):
        bad = """
            def shard_worker(inbox, outbox):
                while True:
                    try:
                        outbox.put(process(inbox.get()))
                    except Exception:
                        outbox.put(None)
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/sharding.py")
        assert rule_ids(violations) == ["RL008"]
        assert "worker" in violations[0].message

    def test_good_worker_ships_traceback(self):
        good = """
            def shard_worker(inbox, outbox):
                while True:
                    try:
                        outbox.put(process(inbox.get()))
                    except Exception:
                        outbox.put(("error", traceback.format_exc()))
                        break
            """
        assert run_rule(self.RULE, good, "repro/runtime/sharding.py") == []

    def test_good_narrow_best_effort_handler(self):
        good = """
            def cleanup(segment):
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass
            """
        assert run_rule(self.RULE, good, "repro/runtime/transport.py") == []

    def test_good_broad_handler_that_handles(self):
        good = """
            def attach(name):
                try:
                    return SharedMemory(name=name)
                except Exception as error:
                    raise ExecutionError(f"attach failed: {error}") from error
            """
        assert run_rule(self.RULE, good, "repro/runtime/transport.py") == []


# --------------------------------------------------------------------- #
# RL009 — atomic (write-temp + fsync + rename) checkpoint writes
# --------------------------------------------------------------------- #
class TestRL009:
    RULE = AtomicCheckpointWriteRule()

    def test_bad_in_place_open_write(self):
        bad = """
            def save(path, blob):
                with open(path, "wb") as handle:
                    handle.write(blob)
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/checkpoint.py")
        assert rule_ids(violations) == ["RL009"]
        assert "os.replace" in violations[0].message

    def test_bad_pathlib_write_bytes(self):
        bad = """
            def save(path, blob):
                path.write_bytes(blob)
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/checkpoint.py")
        assert rule_ids(violations) == ["RL009"]

    def test_bad_rename_without_fsync(self):
        bad = """
            import os

            def save(path, blob):
                temp = path + ".tmp"
                with open(temp, "wb") as handle:
                    handle.write(blob)
                os.replace(temp, path)
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/checkpoint.py")
        assert rule_ids(violations) == ["RL009"]
        assert "os.fsync" in violations[0].message

    def test_good_write_temp_fsync_rename(self):
        good = """
            import os

            def save(path, blob):
                temp = path + ".tmp"
                with open(temp, "wb") as handle:
                    handle.write(blob)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp, path)
            """
        assert run_rule(self.RULE, good, "repro/runtime/checkpoint.py") == []

    def test_good_read_only_open(self):
        good = """
            def load(path):
                with open(path, "rb") as handle:
                    return handle.read()
            """
        assert run_rule(self.RULE, good, "repro/runtime/checkpoint.py") == []

    def test_scope_is_checkpoint_basenames_only(self):
        bad = """
            def save(path, blob):
                with open(path, "wb") as handle:
                    handle.write(blob)
            """
        assert run_rule(self.RULE, bad, "repro/runtime/sharding.py") == []
        flagged = run_rule(self.RULE, bad, "tools/snapshot_checkpoint_io.py")
        assert rule_ids(flagged) == ["RL009"]


# --------------------------------------------------------------------- #
# RL010 — no Event(...) construction on the block hot path
# --------------------------------------------------------------------- #
class TestRL010:
    RULE = EventConstructionRule()

    def test_bad_event_construction_in_streaming(self):
        bad = """
            def rematerialize(block):
                return [
                    Event(block.types[i], block.times[i], block.payload(i))
                    for i in range(len(block))
                ]
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/streaming.py")
        assert rule_ids(violations) == ["RL010"]
        assert "event_at" in violations[0].message

    def test_bad_qualified_constructor_in_worker(self):
        bad = """
            def decode(payload):
                return [event.Event(t, time, attrs) for t, time, attrs in payload]
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/sharding.py")
        assert rule_ids(violations) == ["RL010"]

    def test_good_block_views(self):
        good = """
            def route(block, router):
                selections = router.route_block(block)
                return [block.select(indices) for indices in selections]

            def edge_view(block, position):
                return block.event_at(position)
            """
        assert run_rule(self.RULE, good, "repro/runtime/sharding.py") == []

    def test_out_of_scope_decoder_may_build_events(self):
        allowed = """
            def decode(view):
                return [Event(t, time, attrs) for t, time, attrs in rows(view)]
            """
        assert run_rule(self.RULE, allowed, "repro/events/columnar.py") == []
        assert run_rule(self.RULE, allowed, "repro/runtime/checkpoint.py") == []


# --------------------------------------------------------------------- #
# RL011 — no raw event-time-vs-cursor ordering comparisons
# --------------------------------------------------------------------- #
class TestRL011:
    RULE = RawOrderComparisonRule()

    def test_bad_time_vs_clock_check(self):
        # The exact shape the pre-PR-10 executors used inline.
        bad = """
            def process(self, event):
                if event.time < self._clock:
                    raise ExecutionError("out of order")
                self._clock = event.time
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/sharding.py")
        assert rule_ids(violations) == ["RL011"]
        assert "ensure_in_order" in violations[0].message

    def test_bad_latest_event_comparison(self):
        # The shared-window engines' drifted copy: time-only, backwards
        # message — the drift RL011 exists to prevent recurring.
        bad = """
            def process(self, event):
                latest = self._latest_event
                if latest is not None and latest.time > event.time:
                    raise ExecutionError("strictly ordered arrival required")
            """
        violations = run_rule(self.RULE, bad, "repro/runtime/shared_windows.py")
        assert rule_ids(violations) == ["RL011"]

    def test_bad_chained_comparison(self):
        bad = """
            def stale(self, event):
                return self._clock >= event.sequence >= 0
            """
        assert rule_ids(run_rule(self.RULE, bad, "repro/runtime/streaming.py")) == [
            "RL011"
        ]

    def test_good_helper_calls_and_unrelated_compares(self):
        good = """
            def process(self, event):
                ensure_in_order(event.time, self._clock)
                self._clock = max(self._clock, event.time)
                if event.time >= self._window_end:
                    self._close()
            """
        assert run_rule(self.RULE, good, "repro/runtime/streaming.py") == []

    def test_sanctioned_homes_are_excluded(self):
        raw = """
            def append(self, event):
                if event.time < self._last_time:
                    raise StreamError("out-of-order append")
            """
        assert run_rule(self.RULE, raw, "repro/events/stream.py") == []
        assert run_rule(self.RULE, raw, "repro/runtime/reorder.py") == []
        # Pattern engines compare events for pattern semantics, not
        # arrival order — out of scope.
        assert run_rule(self.RULE, raw, "repro/core/hamlet_graph.py") == []


# --------------------------------------------------------------------- #
# Suppressions
# --------------------------------------------------------------------- #
class TestSuppressions:
    def test_disable_comment_silences_rule(self):
        source = "value = hash(key)  # reprolint: disable=RL001\n"
        assert lint_source(source, "repro/runtime/router.py") == []

    def test_disable_all(self):
        source = "value = hash(key)  # reprolint: disable=ALL\n"
        assert lint_source(source, "repro/runtime/router.py") == []

    def test_disable_other_rule_does_not_silence(self):
        source = "value = hash(key)  # reprolint: disable=RL006\n"
        violations = lint_source(source, "repro/runtime/router.py")
        assert rule_ids(violations) == ["RL001"]

    def test_parse_suppressions_multi_id(self):
        lines = ["x = 1", "y = 2  # reprolint: disable=RL001, RL006"]
        assert parse_suppressions(lines) == {2: frozenset({"RL001", "RL006"})}


# --------------------------------------------------------------------- #
# Framework plumbing
# --------------------------------------------------------------------- #
class TestFramework:
    def test_normalize_relpath_slices_at_repro(self):
        path = Path("/tmp/fixtures/src/repro/runtime/sharding.py")
        assert normalize_relpath(path) == "repro/runtime/sharding.py"

    def test_normalize_relpath_falls_back_to_root_relative(self):
        path = Path("/work/tools/reprolint/cli.py")
        assert normalize_relpath(path, Path("/work")) == "tools/reprolint/cli.py"

    def test_syntax_error_reported_as_rl000(self):
        violations = lint_source("def broken(:\n", "repro/runtime/bad.py")
        assert rule_ids(violations) == ["RL000"]

    def test_rule_catalogue_ids_unique_and_documented(self):
        ids = [rule_class.id for rule_class in ALL_RULES]
        assert len(ids) == len(set(ids)) == 11
        assert ids == sorted(ids)
        for rule_class in ALL_RULES:
            assert rule_class.title, rule_class.id
            assert rule_class.rationale, rule_class.id


# --------------------------------------------------------------------- #
# CLI behavior
# --------------------------------------------------------------------- #
class TestCli:
    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert main([str(clean)]) == 0
        assert "reprolint: clean" in capsys.readouterr().out

    def test_exit_one_on_violation(self, tmp_path, capsys):
        fixture_dir = tmp_path / "repro" / "runtime"
        fixture_dir.mkdir(parents=True)
        bad = fixture_dir / "router.py"
        bad.write_text("value = hash(key)\n", encoding="utf-8")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out
        assert "1 violation(s)" in out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_exit_two_on_unknown_rule_id(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert main(["--select", "RL999", str(clean)]) == 2
        assert "unknown rule ids" in capsys.readouterr().err

    def test_select_limits_rules(self, tmp_path):
        fixture_dir = tmp_path / "repro" / "runtime"
        fixture_dir.mkdir(parents=True)
        bad = fixture_dir / "router.py"
        bad.write_text("value = hash(key)\n", encoding="utf-8")
        assert main(["--select", "RL006", "-q", str(tmp_path)]) == 0
        assert main(["--select", "RL001", "-q", str(tmp_path)]) == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_class in ALL_RULES:
            assert rule_class.id in out

    def test_syntax_error_counts_as_violation(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n", encoding="utf-8")
        assert main(["-q", str(broken)]) == 1


# --------------------------------------------------------------------- #
# Self-check: the shipped tree obeys its own invariants
# --------------------------------------------------------------------- #
class TestShippedTree:
    def test_src_repro_is_violation_free(self):
        violations = lint_paths([REPO_ROOT / "src"])
        rendered = "\n".join(violation.render() for violation in violations)
        assert violations == [], f"src tree has violations:\n{rendered}"

    def test_src_repro_has_zero_suppressions(self):
        offenders = []
        for path in sorted((REPO_ROOT / "src").rglob("*.py")):
            lines = path.read_text(encoding="utf-8").splitlines()
            if parse_suppressions(lines):
                offenders.append(str(path))
        assert offenders == [], f"suppression comments in shipped tree: {offenders}"

    def test_tools_reprolint_is_violation_free(self):
        violations = lint_paths([REPO_ROOT / "tools"])
        rendered = "\n".join(violation.render() for violation in violations)
        assert violations == [], f"tools tree has violations:\n{rendered}"


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
