"""Sharded block ingest vs per-event sharded and single-process runs.

The routing invariant extends to columns: :meth:`ShardRouter.route_block`
must select exactly the rows :meth:`ShardRouter.route` would ship, and a
sharded run fed one :class:`EventBlock` must merge to the same report as
the per-event sharded run and the single-process streaming run — across
shard counts, workers=0 / pool mode, both transports and kernel backends.
Pool-mode workers rebuild blocks from the shipped columnar bytes and
ingest them without constructing events; these tests pin that the whole
chain stays bit-identical.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core import HamletEngine
from repro.events import Event
from repro.events.block import EventBlock
from repro.query import Query, Window, kleene, seq, sum_of
from repro.runtime import StreamingExecutor, run_sharded
from repro.runtime.sharding import ShardRouter

WINDOW = Window(32.0, 8.0)


def make_stream(seed: int, size: int) -> list[Event]:
    rng = random.Random(seed)
    events = []
    for index in range(size):
        type_name = rng.choices(("A", "B", "C"), weights=(1.0, 3.0, 1.0))[0]
        events.append(
            Event(
                type_name,
                float(index),
                {"v": float(rng.randint(0, 6)), "g": float(rng.randint(1, 4))},
            )
        )
    return events


def grouped_workload() -> list[Query]:
    return [
        Query.build(
            seq("A", kleene("B")), group_by=("g",), window=WINDOW, name="sb_q1"
        ),
        Query.build(
            seq("A", kleene("B")),
            aggregate=sum_of("B", "v"),
            group_by=("g",),
            window=WINDOW,
            name="sb_q2",
        ),
        Query.build(
            seq("C", kleene("B")), group_by=("g",), window=WINDOW, name="sb_q3"
        ),
    ]


def ungrouped_workload() -> list[Query]:
    return [
        Query.build(seq("A", kleene("B")), window=WINDOW, name="sb_u1"),
        Query.build(seq("C", kleene("B")), window=WINDOW, name="sb_u2"),
    ]


def fingerprint(report):
    """Exact ordered fingerprint — for comparing sharded runs to each other."""
    return (
        report.totals,
        [
            (p.group_key, p.window_index, dict(p.results), p.events)
            for p in report.partition_results
        ],
    )


def multiset(report):
    """Order-free fingerprint — single-process reports interleave units
    differently from the merged shard order (same convention as the
    sharding suite)."""
    return (
        report.totals,
        Counter(
            (p.group_key, p.window_index, tuple(sorted(p.results.items())), p.events)
            for p in report.partition_results
        ),
    )


@pytest.mark.parametrize("shards", (1, 2, 4))
@pytest.mark.parametrize("routing", ("group", "unit"))
def test_route_block_matches_per_event_route(shards, routing):
    queries = grouped_workload() if routing == "group" else ungrouped_workload()
    router = ShardRouter(queries, shards, routing=routing)
    events = make_stream(3, 300)
    block = EventBlock.from_events(events)
    expected: list[list[int]] = [[] for _ in range(router.shards)]
    for local, event in enumerate(events):
        for shard in router.route(event):
            expected[shard].append(local)
    assert [list(sel) for sel in router.route_block(block)] == expected


@pytest.mark.parametrize("shards", (1, 2, 4))
def test_sharded_block_matches_single_process(shards):
    queries = grouped_workload()
    events = make_stream(7, 400)
    block = EventBlock.from_events(events)
    reference = StreamingExecutor(queries, HamletEngine).run(events)
    sharded = run_sharded(queries, block, HamletEngine, workers=0, shards=shards)
    assert multiset(sharded) == multiset(reference)


@pytest.mark.parametrize("shards", (1, 2))
def test_sharded_block_matches_sharded_events(shards):
    queries = grouped_workload()
    events = make_stream(11, 400)
    block = EventBlock.from_events(events)
    per_event = run_sharded(queries, events, HamletEngine, workers=0, shards=shards)
    per_block = run_sharded(queries, block, HamletEngine, workers=0, shards=shards)
    assert fingerprint(per_block) == fingerprint(per_event)


@pytest.mark.parametrize("transport", ("pickle", "shm"))
def test_sharded_block_pool_workers(transport):
    queries = grouped_workload()
    events = make_stream(13, 400)
    block = EventBlock.from_events(events)
    reference = StreamingExecutor(queries, HamletEngine).run(events)
    sharded = run_sharded(
        queries,
        block,
        HamletEngine,
        workers=2,
        shards=2,
        transport=transport,
        batch_size=64,
    )
    assert multiset(sharded) == multiset(reference)


@pytest.mark.parametrize("backend", ("python", "numpy", "auto"))
def test_sharded_block_kernel_backends(backend):
    if backend == "numpy":
        pytest.importorskip("numpy")
    queries = grouped_workload()
    events = make_stream(17, 400)
    block = EventBlock.from_events(events)
    per_event = run_sharded(
        queries, events, HamletEngine, workers=0, shards=2, kernel_backend=backend
    )
    per_block = run_sharded(
        queries, block, HamletEngine, workers=0, shards=2, kernel_backend=backend
    )
    assert fingerprint(per_block) == fingerprint(per_event)


def test_sharded_block_unit_routing():
    queries = ungrouped_workload()
    events = make_stream(19, 300)
    block = EventBlock.from_events(events)
    reference = StreamingExecutor(queries, HamletEngine).run(events)
    sharded = run_sharded(
        queries, block, HamletEngine, workers=0, shards=2, routing="unit"
    )
    assert multiset(sharded) == multiset(reference)


def test_sharded_block_interleaved_with_events():
    # Blocks and loose events may interleave on one driver; per-shard
    # arrival order is preserved across the mixed feeds.
    from repro.runtime.sharding import ShardedStreamingExecutor

    queries = grouped_workload()
    events = make_stream(23, 300)
    block = EventBlock.from_events(events)
    reference = StreamingExecutor(queries, HamletEngine).run(events)
    driver = ShardedStreamingExecutor(queries, HamletEngine, workers=0, shards=2)
    for event in events[:100]:
        driver.process(event)
    driver.process_block(block.slice(100, 220))
    for event in events[220:]:
        driver.process(event)
    assert multiset(driver.finish()) == multiset(reference)


def test_sharded_block_out_of_order_block_rejected():
    from repro.errors import ExecutionError
    from repro.runtime.sharding import ShardedStreamingExecutor

    queries = grouped_workload()
    events = make_stream(29, 100)
    block = EventBlock.from_events(events)
    driver = ShardedStreamingExecutor(queries, HamletEngine, workers=0, shards=2)
    driver.process(Event("A", 500.0, {"v": 1.0, "g": 1.0}))
    with pytest.raises(ExecutionError):
        driver.process_block(block)
