"""Randomized streaming-vs-batch equivalence.

The strongest correctness statement of the streaming runtime: over
randomized integer-valued streams, the single-pass
:class:`~repro.runtime.StreamingExecutor` produces totals **bit-identical**
to the batch replay :class:`~repro.runtime.WorkloadExecutor` — across
HAMLET (every sharing policy), GRETA and the two-step / SHARON-style
baselines, for tumbling and overlapping (including fractional-slide)
windows, GROUP BY, negation and decomposed OR queries, with lazy opening on
and off, and on **both** streaming execution paths: the shared multi-window
engine (``shared_windows=True``, the default — one engine per ``(group,
unit)`` pair, per-window-instance coefficients) and the per-instance
reference pool (``shared_windows=False``), up to 600-event streams.

The sharded driver joins the same equivalence class: in-process shards
(1/2/4, both routing modes) and real multi-process workers must reproduce
the single-process totals *and* per-partition results bit-identically.

All event attributes are small integers, so per-partition sums stay exact in
float64 (windows keep partitions small enough that trend counts remain below
2**53) and exact ``==`` comparison is meaningful; see ``docs/DESIGN.md``.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import FlatSequenceEngine, TwoStepEngine
from repro.core import HamletEngine
from repro.greta import GretaEngine
from repro.optimizer import AlwaysShareOptimizer, DynamicSharingOptimizer, NeverShareOptimizer
from repro.query import (
    Query,
    Window,
    avg,
    count_events,
    kleene,
    parse_pattern,
    seq,
    sum_of,
)
from repro.query.predicates import attr_less
from repro.events import Event
from repro.runtime import run_sharded, run_streaming, run_workload

TYPE_NAMES = ("A", "B", "C", "D", "X")

#: Sliding window with slide = size/4: at one event per time unit a partition
#: holds <= 32 events, so every count (< 2**33) stays exactly representable.
SLIDING = Window(32.0, 8.0)
TUMBLING = Window(32.0)
#: Fractional slide: ``k * 3.2`` accumulates float error, exercising the
#: integer window-index arithmetic end to end.
FRACTIONAL = Window(16.0, 3.2)


def make_stream(seed: int, size: int, *, negative_weight: float = 0.08) -> list[Event]:
    """A random in-order stream with integer-valued attributes."""
    rng = random.Random(seed)
    weights = [1.0, 3.0, 1.0, 1.0, negative_weight]
    events = []
    for index in range(size):
        type_name = rng.choices(TYPE_NAMES, weights=weights)[0]
        events.append(
            Event(
                type_name,
                float(index),
                {"v": float(rng.randint(0, 6)), "g": float(rng.randint(1, 2))},
            )
        )
    return events


def workload(window: Window, *, with_negation: bool = True, group_by=()) -> list[Query]:
    """Shared-Kleene workload mixing COUNT(*) / COUNT(E) / SUM / AVG and NOT."""
    queries = [
        Query.build(seq("A", kleene("B")), group_by=group_by, window=window, name="sq_q1"),
        Query.build(seq("C", kleene("B")), group_by=group_by, window=window, name="sq_q2"),
        Query.build(
            seq("A", kleene("B")),
            predicates=[attr_less("v", 4.0, event_type="B")],
            group_by=group_by,
            window=window,
            name="sq_q3",
        ),
        Query.build(
            seq("C", kleene("B"), "D"),
            aggregate=sum_of("B", "v"),
            group_by=group_by,
            window=window,
            name="sq_q4",
        ),
        Query.build(
            seq("A", kleene("B")), aggregate=avg("B", "v"), group_by=group_by, window=window, name="sq_q5"
        ),
        Query.build(
            seq("D", kleene("B")),
            aggregate=count_events("B"),
            group_by=group_by,
            window=window,
            name="sq_q6",
        ),
    ]
    if with_negation:
        queries.append(
            Query.build(
                parse_pattern("SEQ(A, NOT X, B+)"), group_by=group_by, window=window, name="sq_q7"
            )
        )
        queries.append(
            Query.build(
                parse_pattern("SEQ(C, B+, NOT X)"), group_by=group_by, window=window, name="sq_q8"
            )
        )
    return queries


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("size", (150, 300, 600))
@pytest.mark.parametrize("window", (TUMBLING, SLIDING), ids=("tumbling", "sliding"))
@pytest.mark.parametrize(
    "optimizer_factory",
    (DynamicSharingOptimizer, AlwaysShareOptimizer, NeverShareOptimizer),
    ids=("dynamic", "always-share", "never-share"),
)
def test_streaming_bit_identical_to_batch_hamlet(seed, size, window, optimizer_factory):
    events = make_stream(seed, size)
    queries = workload(window)
    factory = lambda: HamletEngine(optimizer_factory())  # noqa: E731
    batch = run_workload(queries, events, factory)
    shared = run_streaming(queries, events, factory)
    instances = run_streaming(queries, events, factory, shared_windows=False)
    assert shared.totals == batch.totals  # exact — integer-valued streams
    assert instances.totals == batch.totals


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("size", (150, 600))
@pytest.mark.parametrize("window", (TUMBLING, SLIDING, FRACTIONAL), ids=("tumbling", "sliding", "fractional"))
def test_streaming_bit_identical_to_batch_greta(seed, size, window):
    events = make_stream(seed, size)
    queries = workload(window)
    batch = run_workload(queries, events, GretaEngine)
    shared = run_streaming(queries, events, GretaEngine)
    instances = run_streaming(queries, events, GretaEngine, shared_windows=False)
    assert shared.totals == batch.totals
    assert instances.totals == batch.totals


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("shared_windows", (True, False), ids=("shared", "instances"))
@pytest.mark.parametrize("lazy_open", (True, False), ids=("lazy", "eager"))
def test_streaming_matches_batch_with_group_by(seed, lazy_open, shared_windows):
    events = make_stream(seed, 400)
    queries = workload(SLIDING, group_by=("g",))
    factory = lambda: HamletEngine(DynamicSharingOptimizer())  # noqa: E731
    batch = run_workload(queries, events, factory)
    streaming = run_streaming(
        queries, events, factory, lazy_open=lazy_open, shared_windows=shared_windows
    )
    assert streaming.totals == batch.totals


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("shared_windows", (True, False), ids=("shared", "instances"))
def test_streaming_matches_batch_on_negation_dense_streams(seed, shared_windows):
    events = make_stream(seed, 300, negative_weight=2.0)
    queries = workload(SLIDING)
    for factory in (
        lambda: HamletEngine(AlwaysShareOptimizer()),
        lambda: HamletEngine(NeverShareOptimizer()),
        GretaEngine,
    ):
        batch = run_workload(queries, events, factory)
        streaming = run_streaming(queries, events, factory, shared_windows=shared_windows)
        assert streaming.totals == batch.totals


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("shared_windows", (True, False), ids=("shared", "instances"))
def test_streaming_matches_batch_fractional_slide(seed, shared_windows):
    """Fractional slides exercise the integer instance arithmetic end to end."""
    events = make_stream(seed, 300)
    queries = workload(FRACTIONAL)
    factory = lambda: HamletEngine(DynamicSharingOptimizer())  # noqa: E731
    batch = run_workload(queries, events, factory)
    streaming = run_streaming(queries, events, factory, shared_windows=shared_windows)
    assert streaming.totals == batch.totals


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("size", (150, 400))
def test_shared_windows_per_window_results_match_per_instance(seed, size):
    """Beyond totals: every emitted ``(group, window)`` partition agrees.

    The shared multi-window engine must reproduce the per-instance engines'
    per-window results exactly — including which windows are emitted at all
    (lazy opening) — not just the workload-level sums.
    """
    events = make_stream(seed, size)
    queries = workload(SLIDING, group_by=("g",))
    factory = lambda: HamletEngine(DynamicSharingOptimizer())  # noqa: E731
    shared = run_streaming(queries, events, factory)
    instances = run_streaming(queries, events, factory, shared_windows=False)
    shared_map = {p.key: dict(p.results) for p in shared.partition_results}
    instance_map = {p.key: dict(p.results) for p in instances.partition_results}
    assert shared_map == instance_map


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize(
    "engine_factory", (TwoStepEngine, FlatSequenceEngine), ids=("two-step", "sharon-flat")
)
def test_streaming_matches_batch_baselines(seed, engine_factory):
    # Small windows keep the enumeration-based baselines tractable; the
    # flattened baseline supports neither negation nor COUNT(E)/SUM bodies
    # beyond its model, so the workload is restricted accordingly.
    window = Window(8.0, 2.0)
    events = make_stream(seed, 300, negative_weight=0.0)
    queries = [
        Query.build(seq("A", kleene("B")), window=window, name="bl_q1"),
        Query.build(seq("C", kleene("B")), window=window, name="bl_q2"),
    ]
    batch = run_workload(queries, events, engine_factory)
    streaming = run_streaming(queries, events, engine_factory)
    assert streaming.totals == batch.totals


# --------------------------------------------------------------------- #
# Sharded == single-process == batch
# --------------------------------------------------------------------- #
def partition_multiset(report):
    """Every emitted partition as a multiset entry.

    Partitions of *different execution units* share the ``(group, window
    index)`` key, so a dict keyed by ``p.key`` would silently drop all but
    one unit's partition per key; the Counter keeps them all.
    """
    from collections import Counter

    return Counter(
        (p.key, tuple(sorted(p.results.items()))) for p in report.partition_results
    )


def assert_sharded_matches(queries, events, factory, **sharded_kwargs):
    """Totals AND per-(group, window, unit) partition results must agree exactly."""
    batch = run_workload(queries, events, factory)
    streaming = run_streaming(queries, events, factory)
    sharded = run_sharded(queries, events, factory, **sharded_kwargs)
    assert sharded.totals == streaming.totals == batch.totals
    assert partition_multiset(sharded) == partition_multiset(streaming)


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("shards", (1, 2, 4))
@pytest.mark.parametrize("routing", ("group", "unit"))
@pytest.mark.parametrize(
    "window", (TUMBLING, SLIDING, FRACTIONAL), ids=("tumbling", "sliding", "fractional")
)
def test_sharded_bit_identical_to_streaming_and_batch(seed, shards, routing, window):
    """Sharded (1/2/4 shards, both routing modes) == streaming == batch.

    GROUP BY workloads admit both routing modes: hash-on-group-key and
    by-execution-unit.  Shard executors run in-process (``workers=0``) so
    the suite exercises router + merge on every parametrization without
    paying fork startup 36 times; the multiprocess transport is covered by
    ``test_sharding.py`` and the 4-worker case below.
    """
    events = make_stream(seed, 400)
    queries = workload(window, group_by=("g",))
    factory = lambda: HamletEngine(DynamicSharingOptimizer())  # noqa: E731
    assert_sharded_matches(
        queries, events, factory, workers=0, shards=shards, routing=routing
    )


@pytest.mark.parametrize("seed", range(2))
@pytest.mark.parametrize("workers", (2, 4))
def test_sharded_multiprocess_bit_identical(seed, workers):
    """Real worker processes (batched transport) reproduce the same bits."""
    events = make_stream(seed, 400)
    queries = workload(SLIDING, group_by=("g",))
    assert_sharded_matches(
        queries,
        events,
        lambda: HamletEngine(DynamicSharingOptimizer()),  # noqa: E731
        workers=workers,
        batch_size=64,
    )


@pytest.mark.parametrize("shards", (2, 4))
def test_sharded_without_group_by_shards_by_unit(shards):
    """GROUP-BY-less workloads fall back to unit routing, same results."""
    events = make_stream(1, 400)
    queries = workload(SLIDING, group_by=())
    factory = lambda: HamletEngine(DynamicSharingOptimizer())  # noqa: E731
    assert_sharded_matches(queries, events, factory, workers=0, shards=shards)


@pytest.mark.parametrize("seed", range(2))
def test_sharded_matches_on_negation_dense_streams(seed):
    events = make_stream(seed, 300, negative_weight=2.0)
    queries = workload(SLIDING, group_by=("g",))
    assert_sharded_matches(queries, events, GretaEngine, workers=0, shards=3)


def test_sharded_recombines_decomposed_or_queries():
    window = Window(60.0)
    or_query = Query.build(
        seq("A", kleene("B")) | seq("C", kleene("D")), window=window, name="shor_q"
    )
    stream = [Event("A", 0.0), Event("B", 1.0), Event("C", 2.0), Event("D", 3.0), Event("D", 4.0)]
    batch = run_workload([or_query], stream)
    # The unit router deliberately co-locates all sub-queries of one
    # decomposition (clusters are transitive over decompositions), so the
    # requested 2 shards collapse to 1 and the shard recombines locally.
    sharded = run_sharded([or_query], stream, workers=0, shards=2)
    assert sharded.result_for("shor_q") == batch.result_for("shor_q") == 4.0


def test_sharded_recombines_decomposed_or_queries_across_group_shards():
    window = Window(60.0)
    or_query = Query.build(
        seq("A", kleene("B")) | seq("C", kleene("D")),
        group_by=("g",),
        window=window,
        name="shorg_q",
    )
    stream = [
        Event("A", 0.0, {"g": g}) for g in (1.0, 2.0, 3.0)
    ] + [
        Event("B", 1.0, {"g": g}) for g in (1.0, 2.0, 3.0)
    ] + [
        Event("C", 2.0, {"g": 1.0}),
        Event("D", 3.0, {"g": 1.0}),
        Event("D", 4.0, {"g": 2.0}),
    ]
    batch = run_workload([or_query], stream)
    streaming = run_streaming([or_query], stream)
    # Group routing spreads the groups over shards; the driver rebuilds
    # totals from the merged partitions, so it must re-run the OR
    # recombination itself — per (group, window) partition — on the
    # multi-shard merge path (a missing-branch partition must combine with
    # an explicit 0.0, not vanish).
    for shards in (2, 3):
        sharded = run_sharded([or_query], stream, workers=0, shards=shards)
        assert sharded.totals == streaming.totals == batch.totals


@pytest.mark.parametrize("lazy_open", (True, False), ids=("lazy", "eager"))
def test_streaming_recombines_decomposed_or_queries(lazy_open):
    window = Window(60.0)
    or_query = Query.build(
        seq("A", kleene("B")) | seq("C", kleene("D")), window=window, name="sor_q"
    )
    stream = [Event("A", 0.0), Event("B", 1.0), Event("C", 2.0), Event("D", 3.0), Event("D", 4.0)]
    batch = run_workload([or_query], stream)
    streaming = run_streaming([or_query], stream, lazy_open=lazy_open)
    assert streaming.result_for("sor_q") == batch.result_for("sor_q") == 4.0
