"""Integration tests for the workload executor."""

from __future__ import annotations

import pytest

from repro.baselines import TwoStepEngine
from repro.core import HamletEngine
from repro.errors import WorkloadError
from repro.events import Event, EventStream
from repro.greta import GretaEngine
from repro.query import (
    Query,
    Window,
    Workload,
    count_trends,
    kleene,
    max_of,
    seq,
)
from repro.runtime import WorkloadExecutor, run_workload


def _stream() -> EventStream:
    events = []
    time = 0.0
    for window_index in range(2):
        for group in (1, 2):
            events.append(Event("A", time, {"g": group}))
            time += 1.0
            for _ in range(3):
                events.append(Event("B", time, {"g": group, "v": 2.0}))
                time += 1.0
        time = (window_index + 1) * 60.0
    events.sort()
    return EventStream(events)


def _workload() -> Workload:
    window = Window(60.0)
    return Workload(
        [
            Query.build(seq("A", kleene("B")), group_by=["g"], window=window, name="ex_q1"),
            Query.build(seq("C", kleene("B")), group_by=["g"], window=window, name="ex_q2"),
        ]
    )


class TestWorkloadExecutor:
    def test_hamlet_and_greta_agree_end_to_end(self):
        stream = _stream()
        workload = _workload()
        hamlet_report = WorkloadExecutor(workload, HamletEngine).run(stream)
        greta_report = WorkloadExecutor(workload, GretaEngine).run(stream)
        assert hamlet_report.totals == pytest.approx(greta_report.totals)
        # Two windows x two groups with events = 4 partitions per unit.
        assert hamlet_report.metrics.partitions == 4
        assert hamlet_report.metrics.stream_events == len(stream)
        # Per starter and window/group: 3 B events -> 2^3 - 1 = 7 trends; two
        # windows x two groups -> 28 in total for q1, 0 for q2 (no C events).
        assert hamlet_report.result_for("ex_q1") == 28.0
        assert hamlet_report.result_for("ex_q2") == 0.0

    def test_per_partition_results_exposed(self):
        report = run_workload(_workload(), _stream())
        per_partition = report.results_by_partition("ex_q1")
        assert len(per_partition) == 4
        assert all(value == 7.0 for value in per_partition.values())

    def test_min_max_queries_routed_to_greta(self):
        window = Window(60.0)
        workload = Workload(
            [
                Query.build(seq("A", kleene("B")), window=window, name="mm_q1"),
                Query.build(
                    seq("A", kleene("B")), aggregate=max_of("B", "v"), window=window, name="mm_q2"
                ),
            ]
        )
        stream = EventStream([Event("A", 0.0), Event("B", 1.0, {"v": 5.0}), Event("B", 2.0, {"v": 9.0})])
        report = WorkloadExecutor(workload, HamletEngine).run(stream)
        assert report.result_for("mm_q1") == 3.0
        assert report.result_for("mm_q2") == 9.0

    def test_decomposed_or_query_recombined(self):
        window = Window(60.0)
        or_query = Query.build(
            seq("A", kleene("B")) | seq("C", kleene("D")), window=window, name="or_q"
        )
        partner = Query.build(seq("Z", kleene("B")), window=window, name="or_partner")
        stream = EventStream(
            [Event("A", 0.0), Event("B", 1.0), Event("C", 2.0), Event("D", 3.0), Event("D", 4.0)]
        )
        report = WorkloadExecutor(Workload([or_query, partner]), HamletEngine).run(stream)
        # Left branch: 1 trend (a,b); right branch: 3 trends (c,d1),(c,d2),(c,d1,d2).
        assert report.result_for("or_q") == 4.0

    def test_or_query_with_only_one_matching_branch(self):
        """A stream matching only one OR branch: the absent branch enters the
        recombination as an explicit 0.0, not a dropped operand."""
        window = Window(60.0)
        or_query = Query.build(
            seq("A", kleene("B")) | seq("C", kleene("D")), window=window, name="or_half_q"
        )
        stream = EventStream([Event("A", 0.0), Event("B", 1.0), Event("B", 2.0)])
        report = WorkloadExecutor(Workload([or_query]), HamletEngine).run(stream)
        # Left branch alone: trends (a,b1), (a,b2), (a,b1,b2).
        assert report.result_for("or_half_q") == 3.0

    def test_and_query_sub_results_joined_across_units(self):
        """AND sub-queries are type-disjoint, hence evaluated in *different*
        execution units; their per-window results must be joined by partition
        key before multiplying, and a window where one operand is absent must
        contribute 0 — not a partial product."""
        window = Window(60.0)
        and_query = Query.build(
            seq("A", kleene("B")) & seq("C", kleene("D")), window=window, name="and_q"
        )
        both = EventStream(
            [Event("A", 0.0), Event("B", 1.0), Event("C", 2.0), Event("D", 3.0), Event("D", 4.0)]
        )
        report = WorkloadExecutor(Workload([and_query]), HamletEngine).run(both)
        # 1 left trend x 3 right trends.
        assert report.result_for("and_q") == 3.0
        # Only the left branch matches: the conjunction has no matches.
        left_only = EventStream([Event("A", 0.0), Event("B", 1.0), Event("B", 2.0)])
        report = WorkloadExecutor(Workload([and_query]), HamletEngine).run(left_only)
        assert report.result_for("and_q") == 0.0
        # Branches matching in *different* windows only must not be joined.
        disjoint_windows = EventStream(
            [Event("A", 0.0), Event("B", 1.0), Event("C", 70.0), Event("D", 71.0)]
        )
        report = WorkloadExecutor(Workload([and_query]), HamletEngine).run(disjoint_windows)
        assert report.result_for("and_q") == 0.0

    def test_different_windows_run_in_separate_units(self):
        workload = Workload(
            [
                Query.build(seq("A", kleene("B")), window=Window(60.0), name="w_q1"),
                Query.build(seq("A", kleene("B")), window=Window(120.0), name="w_q2"),
            ]
        )
        stream = EventStream([Event("A", 0.0), Event("B", 10.0), Event("B", 70.0)])
        report = WorkloadExecutor(workload, HamletEngine).run(stream)
        # w_q1 windows [0,60) and [60,120): 1 + 0 trends; w_q2 window [0,120): 3 trends.
        assert report.result_for("w_q1") == 1.0
        assert report.result_for("w_q2") == 3.0

    def test_engine_factory_pluggable(self):
        report = WorkloadExecutor(_workload(), TwoStepEngine, reuse_engine=False).run(_stream())
        assert report.result_for("ex_q1") == 28.0
        assert report.engine_name == "two-step"

    def test_optimizer_statistics_attached_for_hamlet(self):
        report = WorkloadExecutor(_workload(), HamletEngine).run(_stream())
        assert report.optimizer_statistics is not None
        assert report.optimizer_statistics.decisions >= 1

    def test_empty_workload_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadExecutor(Workload())

    def test_empty_stream(self):
        report = WorkloadExecutor(_workload(), HamletEngine).run(EventStream())
        assert report.totals == {}
        assert report.metrics.partitions == 0
