"""Unit tests for the single-pass streaming executor.

The randomized cross-executor equivalence lives in
``test_streaming_equivalence.py``; this file pins the streaming-specific
behaviour: emission order and callbacks, eviction and bounded state, the
per-event feed bound, lazy opening, the incremental API and metrics.
"""

from __future__ import annotations

import pytest

from repro.core import HamletEngine
from repro.errors import ExecutionError
from repro.events import Event, EventStream
from repro.greta import GretaEngine
from repro.interfaces import TrendAggregationEngine
from repro.query import Query, Window, Workload, kleene, max_of, seq
from repro.runtime import StreamingExecutor, WorkloadExecutor, run_streaming


def _ab_workload(window: Window, group_by=()) -> Workload:
    return Workload(
        [
            Query.build(seq("A", kleene("B")), group_by=group_by, window=window, name="st_q1"),
            Query.build(seq("C", kleene("B")), group_by=group_by, window=window, name="st_q2"),
        ]
    )


class _CountingEngine(TrendAggregationEngine):
    """Stub engine counting how many instances each event is fed to."""

    name = "counting"

    def __init__(self, feeds: dict[int, int]) -> None:
        self._feeds = feeds
        self._queries = ()

    def start(self, queries):
        self._queries = tuple(queries)

    def process(self, event):
        self._feeds[event.sequence] = self._feeds.get(event.sequence, 0) + 1

    def results(self):
        return {query.name: 0.0 for query in self._queries}

    def memory_units(self):
        return 0


class TestEmission:
    def test_windows_emitted_in_close_order(self):
        window = Window(10.0, 5.0)
        events = [Event("A", 0.0), Event("B", 3.0), Event("A", 7.0), Event("B", 12.0), Event("B", 21.0)]
        emitted = []
        report = run_streaming(_ab_workload(window), events, on_window=lambda r: emitted.append(r))
        assert [r.window_index for r in emitted] == sorted(r.window_index for r in emitted)
        ends = [r.window_end for r in emitted]
        assert ends == sorted(ends)
        # Every emitted window matches the corresponding batch partition result.
        batch = WorkloadExecutor(_ab_workload(window), HamletEngine).run(events)
        batch_results = {p.key: p.results for p in batch.partition_results}
        for result in emitted:
            assert dict(result.results) == batch_results[(result.group_key, result.window_index)]
        assert report.totals == batch.totals

    def test_window_bounds_and_latency_reported(self):
        window = Window(10.0, 5.0)
        emitted = []
        run_streaming(
            _ab_workload(window),
            [Event("A", 1.0), Event("B", 2.0), Event("B", 30.0)],
            on_window=lambda r: emitted.append(r),
        )
        first = emitted[0]
        assert (first.window_start, first.window_end) == (0.0, 10.0)
        assert first.events == 2
        assert first.emission_latency >= 0.0

    def test_empty_stream(self):
        report = run_streaming(_ab_workload(Window(10.0)), [])
        assert report.totals == {}
        assert report.metrics.partitions == 0


class TestEvictionAndBounds:
    def test_closed_windows_are_evicted_and_engines_pooled(self):
        window = Window(10.0, 2.0)
        events = [Event("A", float(t)) if t % 7 == 0 else Event("B", float(t)) for t in range(300)]
        executor = StreamingExecutor(_ab_workload(window), HamletEngine, lazy_open=False)
        report = executor.run(events)
        # Peak state is bounded by the windows covering one timestamp, never
        # by the stream length; closed state is gone at the end.
        assert report.metrics.peak_active_windows <= window.instances_per_event
        assert report.metrics.partitions > 10 * report.metrics.peak_active_windows
        assert executor.active_window_count() == 0
        # Engine instances are pooled and reused across window instances.
        assert executor.engines_created <= report.metrics.peak_active_windows

    def test_peak_memory_does_not_grow_with_stream_length(self):
        """Eviction bounds held state: tripling the stream leaves the peak
        concurrent footprint flat while the window count triples."""
        window = Window(10.0, 2.0)

        def run(length: int):
            events = [
                Event("A" if t % 7 == 0 else "B", float(t)) for t in range(length)
            ]
            return StreamingExecutor(_ab_workload(window), HamletEngine).run(events)

        short = run(100)
        long = run(300)
        assert long.metrics.partitions >= 2.5 * short.metrics.partitions
        assert long.metrics.peak_memory_units <= 2 * short.metrics.peak_memory_units

    def test_peak_scales_with_groups_not_stream(self):
        window = Window(10.0, 2.0)
        events = []
        for t in range(200):
            events.append(Event("A" if t % 5 == 0 else "B", float(t), {"g": t % 3}))
        executor = StreamingExecutor(
            _ab_workload(window, group_by=("g",)), HamletEngine, lazy_open=False
        )
        report = executor.run(events)
        assert report.metrics.peak_active_windows <= 3 * window.instances_per_event
        assert executor.active_window_count() == 0

    def test_each_event_fed_to_at_most_coverage_instances(self):
        window = Window(10.0, 3.0)
        feeds: dict[int, int] = {}
        events = [Event("A", t * 0.5) for t in range(100)]
        workload = [Query.build(seq("A", kleene("A")), window=window, name="cv_q1")]
        run_streaming(workload, events, engine_factory=lambda: _CountingEngine(feeds), lazy_open=False)
        assert feeds  # every event was seen
        assert max(feeds.values()) <= window.instances_per_event
        # Single pass: no event is ever replayed into the same instance twice,
        # so total feeds equal the batch partitioner's routed assignments.
        from repro.runtime.partitioner import GroupWindowPartitioner

        partitioner = GroupWindowPartitioner.for_queries(workload)
        partitioner.add_all(events)
        assert sum(feeds.values()) == partitioner.routed_event_count()


class TestLazyOpen:
    def test_inert_prefix_skipped_without_changing_results(self):
        window = Window(60.0)
        # B events before the first start-type event (A or C) are inert.
        events = [Event("B", float(t)) for t in range(10)] + [Event("A", 10.0)] + [
            Event("B", 10.0 + t) for t in range(1, 4)
        ]
        lazy = StreamingExecutor(_ab_workload(window), HamletEngine)
        lazy_report = lazy.run(events)
        eager = StreamingExecutor(_ab_workload(window), HamletEngine, lazy_open=False)
        eager_report = eager.run(events)
        batch = WorkloadExecutor(_ab_workload(window), HamletEngine).run(events)
        assert lazy_report.totals == eager_report.totals == batch.totals
        assert lazy_report.metrics.events_processed < eager_report.metrics.events_processed

    def test_startless_windows_never_open(self):
        window = Window(10.0)
        events = [Event("B", float(t)) for t in range(50)]  # no A/C at all
        executor = StreamingExecutor(_ab_workload(window), HamletEngine)
        report = executor.run(events)
        assert report.metrics.partitions == 0
        assert report.metrics.events_processed == 0
        assert report.totals == {"st_q1": 0.0, "st_q2": 0.0}


class TestIncrementalApi:
    def test_process_and_finish(self):
        window = Window(10.0)
        executor = StreamingExecutor(_ab_workload(window), HamletEngine)
        executor.process(Event("A", 0.0))
        executor.process(Event("B", 1.0))
        assert executor.active_window_count() == 1
        report = executor.finish()
        assert report.result_for("st_q1") == 1.0
        assert executor.active_window_count() == 0

    def test_out_of_order_rejected(self):
        executor = StreamingExecutor(_ab_workload(Window(10.0)), HamletEngine)
        executor.process(Event("A", 5.0))
        with pytest.raises(ExecutionError):
            executor.process(Event("B", 1.0))

    def test_run_time_slice_uses_stream_index(self):
        window = Window(10.0)
        stream = EventStream(
            [Event("A", 1.0), Event("B", 2.0), Event("A", 11.0), Event("B", 12.0), Event("B", 25.0)]
        )
        executor = StreamingExecutor(_ab_workload(window), HamletEngine)
        # Replaying only the second tumbling pane [10, 20) sees one A+B pair;
        # window indices stay aligned with absolute time.
        report = executor.run(stream, start=10.0, end=20.0)
        assert report.metrics.stream_events == 2
        assert report.result_for("st_q1") == 1.0
        full = executor.run(stream)
        assert full.metrics.stream_events == 5

    def test_run_resets_previous_state(self):
        window = Window(10.0)
        executor = StreamingExecutor(_ab_workload(window), HamletEngine)
        first = executor.run([Event("A", 0.0), Event("B", 1.0)])
        second = executor.run([Event("A", 0.0), Event("B", 1.0)])
        assert first.totals == second.totals
        assert second.metrics.stream_events == 2


class TestEngineRouting:
    def test_min_max_unit_routed_to_greta(self):
        window = Window(60.0)
        workload = Workload(
            [
                Query.build(seq("A", kleene("B")), window=window, name="sm_q1"),
                Query.build(
                    seq("A", kleene("B")), aggregate=max_of("B", "v"), window=window, name="sm_q2"
                ),
            ]
        )
        stream = EventStream(
            [Event("A", 0.0), Event("B", 1.0, {"v": 5.0}), Event("B", 2.0, {"v": 9.0})]
        )
        report = run_streaming(workload, stream)
        assert report.result_for("sm_q1") == 3.0
        assert report.result_for("sm_q2") == 9.0

    def test_optimizer_statistics_merged_across_pool(self):
        window = Window(10.0, 5.0)
        events = []
        for t in range(60):
            events.append(Event("A" if t % 9 == 0 else ("C" if t % 9 == 4 else "B"), float(t)))
        report = run_streaming(_ab_workload(window), events)
        assert report.optimizer_statistics is not None
        assert report.optimizer_statistics.decisions >= 1

    def test_optimizer_statistics_are_per_run(self):
        window = Window(10.0, 5.0)
        events = []
        for t in range(60):
            events.append(Event("A" if t % 9 == 0 else ("C" if t % 9 == 4 else "B"), float(t)))
        executor = StreamingExecutor(_ab_workload(window), HamletEngine)
        first = executor.run(events).optimizer_statistics
        second = executor.run(events).optimizer_statistics
        # Pooled engines survive across runs; their counters must not.
        assert second.decisions == first.decisions
        assert second.shared_bursts == first.shared_bursts

    def test_engine_name_resolved_without_instantiation(self):
        executor = StreamingExecutor(_ab_workload(Window(10.0)), GretaEngine)
        report = executor.run([Event("A", 0.0), Event("B", 1.0)])
        assert report.engine_name == "greta"
