"""Unit tests for the single-pass streaming executor.

The randomized cross-executor equivalence lives in
``test_streaming_equivalence.py``; this file pins the streaming-specific
behaviour: emission order and callbacks, eviction and bounded state, the
per-event feed bound, lazy opening, the incremental API and metrics.
"""

from __future__ import annotations

import pytest

from repro.core import HamletEngine
from repro.errors import ExecutionError
from repro.events import Event, EventStream
from repro.greta import GretaEngine
from repro.interfaces import TrendAggregationEngine
from repro.query import Query, Window, Workload, avg, kleene, max_of, parse_pattern, seq, sum_of
from repro.runtime import StreamingExecutor, WorkloadExecutor, run_streaming


def _ab_workload(window: Window, group_by=()) -> Workload:
    return Workload(
        [
            Query.build(seq("A", kleene("B")), group_by=group_by, window=window, name="st_q1"),
            Query.build(seq("C", kleene("B")), group_by=group_by, window=window, name="st_q2"),
        ]
    )


class _CountingEngine(TrendAggregationEngine):
    """Stub engine counting how many instances each event is fed to."""

    name = "counting"

    def __init__(self, feeds: dict[int, int]) -> None:
        self._feeds = feeds
        self._queries = ()

    def start(self, queries):
        self._queries = tuple(queries)

    def process(self, event):
        self._feeds[event.sequence] = self._feeds.get(event.sequence, 0) + 1

    def results(self):
        return {query.name: 0.0 for query in self._queries}

    def memory_units(self):
        return 0


class TestEmission:
    def test_windows_emitted_in_close_order(self):
        window = Window(10.0, 5.0)
        events = [Event("A", 0.0), Event("B", 3.0), Event("A", 7.0), Event("B", 12.0), Event("B", 21.0)]
        emitted = []
        report = run_streaming(_ab_workload(window), events, on_window=lambda r: emitted.append(r))
        assert [r.window_index for r in emitted] == sorted(r.window_index for r in emitted)
        ends = [r.window_end for r in emitted]
        assert ends == sorted(ends)
        # Every emitted window matches the corresponding batch partition result.
        batch = WorkloadExecutor(_ab_workload(window), HamletEngine).run(events)
        batch_results = {p.key: p.results for p in batch.partition_results}
        for result in emitted:
            assert dict(result.results) == batch_results[(result.group_key, result.window_index)]
        assert report.totals == batch.totals

    def test_window_bounds_and_latency_reported(self):
        window = Window(10.0, 5.0)
        emitted = []
        run_streaming(
            _ab_workload(window),
            [Event("A", 1.0), Event("B", 2.0), Event("B", 30.0)],
            on_window=lambda r: emitted.append(r),
        )
        first = emitted[0]
        assert (first.window_start, first.window_end) == (0.0, 10.0)
        assert first.events == 2
        assert first.emission_latency >= 0.0

    def test_empty_stream(self):
        report = run_streaming(_ab_workload(Window(10.0)), [])
        assert report.totals == {}
        assert report.metrics.partitions == 0


class TestEvictionAndBounds:
    def test_closed_windows_are_evicted_and_engines_pooled(self):
        # Engine pooling is a per-instance-path behaviour; pin that path.
        window = Window(10.0, 2.0)
        events = [Event("A", float(t)) if t % 7 == 0 else Event("B", float(t)) for t in range(300)]
        executor = StreamingExecutor(
            _ab_workload(window), HamletEngine, lazy_open=False, shared_windows=False
        )
        report = executor.run(events)
        # Peak state is bounded by the windows covering one timestamp, never
        # by the stream length; closed state is gone at the end.
        assert report.metrics.peak_active_windows <= window.instances_per_event
        assert report.metrics.partitions > 10 * report.metrics.peak_active_windows
        assert executor.active_window_count() == 0
        # Engine instances are pooled and reused across window instances.
        assert executor.engines_created <= report.metrics.peak_active_windows

    def test_peak_memory_does_not_grow_with_stream_length(self):
        """Eviction bounds held state: tripling the stream leaves the peak
        concurrent footprint flat while the window count triples."""
        window = Window(10.0, 2.0)

        def run(length: int):
            events = [
                Event("A" if t % 7 == 0 else "B", float(t)) for t in range(length)
            ]
            return StreamingExecutor(_ab_workload(window), HamletEngine).run(events)

        short = run(100)
        long = run(300)
        assert long.metrics.partitions >= 2.5 * short.metrics.partitions
        assert long.metrics.peak_memory_units <= 2 * short.metrics.peak_memory_units

    def test_peak_scales_with_groups_not_stream(self):
        window = Window(10.0, 2.0)
        events = []
        for t in range(200):
            events.append(Event("A" if t % 5 == 0 else "B", float(t), {"g": t % 3}))
        executor = StreamingExecutor(
            _ab_workload(window, group_by=("g",)), HamletEngine, lazy_open=False
        )
        report = executor.run(events)
        assert report.metrics.peak_active_windows <= 3 * window.instances_per_event
        assert executor.active_window_count() == 0

    def test_each_event_fed_to_at_most_coverage_instances(self):
        window = Window(10.0, 3.0)
        feeds: dict[int, int] = {}
        events = [Event("A", t * 0.5) for t in range(100)]
        workload = [Query.build(seq("A", kleene("A")), window=window, name="cv_q1")]
        run_streaming(workload, events, engine_factory=lambda: _CountingEngine(feeds), lazy_open=False)
        assert feeds  # every event was seen
        assert max(feeds.values()) <= window.instances_per_event
        # Single pass: no event is ever replayed into the same instance twice,
        # so total feeds equal the batch partitioner's routed assignments.
        from repro.runtime.partitioner import GroupWindowPartitioner

        partitioner = GroupWindowPartitioner.for_queries(workload)
        partitioner.add_all(events)
        assert sum(feeds.values()) == partitioner.routed_event_count()


class TestLazyOpen:
    def test_inert_prefix_skipped_without_changing_results(self):
        window = Window(60.0)
        # B events before the first start-type event (A or C) are inert.
        events = [Event("B", float(t)) for t in range(10)] + [Event("A", 10.0)] + [
            Event("B", 10.0 + t) for t in range(1, 4)
        ]
        lazy = StreamingExecutor(_ab_workload(window), HamletEngine)
        lazy_report = lazy.run(events)
        eager = StreamingExecutor(_ab_workload(window), HamletEngine, lazy_open=False)
        eager_report = eager.run(events)
        batch = WorkloadExecutor(_ab_workload(window), HamletEngine).run(events)
        assert lazy_report.totals == eager_report.totals == batch.totals
        assert lazy_report.metrics.events_processed < eager_report.metrics.events_processed

    def test_startless_windows_never_open(self):
        window = Window(10.0)
        events = [Event("B", float(t)) for t in range(50)]  # no A/C at all
        executor = StreamingExecutor(_ab_workload(window), HamletEngine)
        report = executor.run(events)
        assert report.metrics.partitions == 0
        assert report.metrics.events_processed == 0
        assert report.totals == {"st_q1": 0.0, "st_q2": 0.0}


class TestIncrementalApi:
    def test_process_and_finish(self):
        window = Window(10.0)
        executor = StreamingExecutor(_ab_workload(window), HamletEngine)
        executor.process(Event("A", 0.0))
        executor.process(Event("B", 1.0))
        assert executor.active_window_count() == 1
        report = executor.finish()
        assert report.result_for("st_q1") == 1.0
        assert executor.active_window_count() == 0

    def test_out_of_order_rejected(self):
        executor = StreamingExecutor(_ab_workload(Window(10.0)), HamletEngine)
        executor.process(Event("A", 5.0))
        with pytest.raises(ExecutionError):
            executor.process(Event("B", 1.0))

    def test_run_time_slice_uses_stream_index(self):
        window = Window(10.0)
        stream = EventStream(
            [Event("A", 1.0), Event("B", 2.0), Event("A", 11.0), Event("B", 12.0), Event("B", 25.0)]
        )
        executor = StreamingExecutor(_ab_workload(window), HamletEngine)
        # Replaying only the second tumbling pane [10, 20) sees one A+B pair;
        # window indices stay aligned with absolute time.
        report = executor.run(stream, start=10.0, end=20.0)
        assert report.metrics.stream_events == 2
        assert report.result_for("st_q1") == 1.0
        full = executor.run(stream)
        assert full.metrics.stream_events == 5

    def test_run_resets_previous_state(self):
        window = Window(10.0)
        executor = StreamingExecutor(_ab_workload(window), HamletEngine)
        first = executor.run([Event("A", 0.0), Event("B", 1.0)])
        second = executor.run([Event("A", 0.0), Event("B", 1.0)])
        assert first.totals == second.totals
        assert second.metrics.stream_events == 2


class TestEngineRouting:
    def test_min_max_unit_routed_to_greta(self):
        window = Window(60.0)
        workload = Workload(
            [
                Query.build(seq("A", kleene("B")), window=window, name="sm_q1"),
                Query.build(
                    seq("A", kleene("B")), aggregate=max_of("B", "v"), window=window, name="sm_q2"
                ),
            ]
        )
        stream = EventStream(
            [Event("A", 0.0), Event("B", 1.0, {"v": 5.0}), Event("B", 2.0, {"v": 9.0})]
        )
        report = run_streaming(workload, stream)
        assert report.result_for("sm_q1") == 3.0
        assert report.result_for("sm_q2") == 9.0

    def test_optimizer_statistics_merged_across_pool(self):
        # Sharing decisions are made by per-instance HAMLET engines; the
        # shared-window path has no per-burst decisions to report.
        window = Window(10.0, 5.0)
        events = []
        for t in range(60):
            events.append(Event("A" if t % 9 == 0 else ("C" if t % 9 == 4 else "B"), float(t)))
        report = run_streaming(_ab_workload(window), events, shared_windows=False)
        assert report.optimizer_statistics is not None
        assert report.optimizer_statistics.decisions >= 1

    def test_optimizer_statistics_are_per_run(self):
        window = Window(10.0, 5.0)
        events = []
        for t in range(60):
            events.append(Event("A" if t % 9 == 0 else ("C" if t % 9 == 4 else "B"), float(t)))
        executor = StreamingExecutor(_ab_workload(window), HamletEngine, shared_windows=False)
        first = executor.run(events).optimizer_statistics
        second = executor.run(events).optimizer_statistics
        # Pooled engines survive across runs; their counters must not.
        assert second.decisions == first.decisions
        assert second.shared_bursts == first.shared_bursts

    def test_engine_name_resolved_without_instantiation(self):
        executor = StreamingExecutor(_ab_workload(Window(10.0)), GretaEngine)
        report = executor.run([Event("A", 0.0), Event("B", 1.0)])
        assert report.engine_name == "greta"


class TestSharedWindows:
    """The multi-window shared execution path (shared_windows=True, default)."""

    def _overlap_events(self, count=200, group=False):
        events = []
        for t in range(count):
            name = "A" if t % 7 == 0 else ("C" if t % 11 == 0 else "B")
            attrs = {"g": t % 3} if group else {}
            events.append(Event(name, float(t), attrs))
        return events

    def test_each_event_processed_once_per_group(self):
        window = Window(10.0, 2.0)  # overlap factor 5
        events = self._overlap_events()
        shared = StreamingExecutor(_ab_workload(window), HamletEngine, lazy_open=False)
        shared_report = shared.run(events)
        instances = StreamingExecutor(
            _ab_workload(window), HamletEngine, lazy_open=False, shared_windows=False
        )
        instances.run(events)
        # One unit, one group: the shared path touches the engine once per
        # event where the per-instance path feeds every covering instance.
        assert shared.engine_feeds == len(events)
        assert instances.engine_feeds > 4 * shared.engine_feeds
        # The per-window *accounting* is unchanged: each emitted window still
        # reports every event it contains.
        assert shared_report.metrics.events_processed == pytest.approx(
            instances.run(events).metrics.events_processed
        )

    def test_window_results_identical_to_per_instance_path(self):
        window = Window(10.0, 3.0)
        events = self._overlap_events(150, group=True)
        workload = _ab_workload(window, group_by=("g",))
        shared_emitted, instance_emitted = [], []
        shared = run_streaming(workload, events, on_window=shared_emitted.append)
        instances = run_streaming(
            workload, events, on_window=instance_emitted.append, shared_windows=False
        )
        assert shared.totals == instances.totals
        key = lambda r: (r.group_key, r.window_index)  # noqa: E731
        shared_map = {key(r): r for r in shared_emitted}
        instance_map = {key(r): r for r in instance_emitted}
        assert shared_map.keys() == instance_map.keys()
        for k, result in shared_map.items():
            other = instance_map[k]
            assert dict(result.results) == dict(other.results)
            assert result.events == other.events
            assert (result.window_start, result.window_end) == (
                other.window_start,
                other.window_end,
            )

    def test_one_shared_engine_per_group_not_per_instance(self):
        window = Window(10.0, 2.0)
        events = self._overlap_events(200, group=True)
        executor = StreamingExecutor(_ab_workload(window, group_by=("g",)), HamletEngine)
        peak_groups = 0
        for event in events:
            executor.process(event)
            peak_groups = max(peak_groups, executor.shared_group_count)
        executor.finish()
        assert peak_groups == 3  # one engine per live group key, never per instance
        assert executor.engines_created == 0  # no per-instance engines built
        assert executor.active_window_count() == 0  # everything closed
        # Groups are evicted with their last window: memory tracks live
        # state, not every group key ever seen.
        assert executor.shared_group_count == 0

    def test_shared_state_evicted_as_windows_close(self):
        window = Window(10.0, 2.0)
        workload = [
            Query.build(
                # Negation forces the shared store to keep events; eviction
                # must still bound it by the live-window span.
                parse_pattern("SEQ(A, NOT X, B+)"),
                window=window,
                name="sw_evict_q",
            )
        ]
        executor = StreamingExecutor(workload, HamletEngine)
        short = executor.run(self._overlap_events(100))
        long = executor.run(self._overlap_events(300))
        assert long.metrics.partitions >= 2.5 * short.metrics.partitions
        assert long.metrics.peak_memory_units <= 2 * short.metrics.peak_memory_units

    def test_coefficient_accounting_invariant(self):
        """The engine's incremental entry counter tracks the table exactly."""
        window = Window(10.0, 2.0)
        events = self._overlap_events(150, group=True)
        executor = StreamingExecutor(_ab_workload(window, group_by=("g",)), HamletEngine)

        def engines():
            for unit in executor._units:
                for group in unit.shared_groups.values():
                    yield group.engine

        for step, event in enumerate(events):
            executor.process(event)
            if step % 23 == 0:
                for engine in engines():
                    assert engine.live_coefficient_entries() == (
                        engine.coefficients.entry_count()
                    )
        executor.finish()
        for engine in engines():
            assert engine.live_coefficient_entries() == engine.coefficients.entry_count() == 0

    @pytest.mark.parametrize("policy", ("dynamic", "never", "always"))
    def test_coefficient_accounting_invariant_under_splits(self, policy):
        """Split/merge transitions keep both entry counters exact.

        ``never`` keeps every multi-member class permanently split (replica
        columns live throughout); ``dynamic`` flips columns mid-stream; in
        all cases the incremental canonical and replica counters must match
        their ground-truth scans at every step and drain to zero.
        """
        window = Window(10.0, 2.0)
        events = [
            Event(
                "A" if t % 7 == 0 else ("C" if t % 11 == 0 else "B"),
                float(t),
                {"g": t % 3, "v": float(t % 5)},
            )
            for t in range(150)
        ]
        workload = [
            Query.build(
                seq("A", kleene("B")),
                aggregate=sum_of("B", "v"),
                group_by=("g",),
                window=window,
                name="sw_adp_sum",
            ),
            Query.build(
                seq("A", kleene("B")),
                aggregate=avg("B", "v"),
                group_by=("g",),
                window=window,
                name="sw_adp_avg",
            ),
        ]
        executor = StreamingExecutor(
            workload, HamletEngine, optimizer=policy, burst_size=3
        )

        def engines():
            for unit in executor._units:
                for group in unit.shared_groups.values():
                    yield group.engine

        saw_replicas = False
        for step, event in enumerate(events):
            executor.process(event)
            if step % 11 == 0:
                for engine in engines():
                    assert engine.live_coefficient_entries() == (
                        engine.coefficients.entry_count()
                    )
                    assert engine.replica_coefficient_entries() == (
                        engine.replica_entry_count()
                    )
                    saw_replicas = saw_replicas or engine.replica_coefficient_entries() > 0
        executor.finish()
        for engine in engines():
            assert engine.live_coefficient_entries() == engine.coefficients.entry_count() == 0
            assert engine.replica_coefficient_entries() == engine.replica_entry_count() == 0
        if policy == "never":
            assert saw_replicas  # the split path was actually exercised

    def test_burst_size_without_optimizer_rejected(self):
        """A silently ignored burst cap would hide the misconfiguration.

        Pinned to the reference kernel backend: a burst-folding backend
        (``wants_bursts``, e.g. numpy) legitimately consumes the cap
        without an optimizer, so the rejection is per-backend and must
        not depend on the ambient REPRO_KERNEL_BACKEND default.
        """
        from repro.runtime import ShardedStreamingExecutor

        window = Window(10.0, 2.0)
        with pytest.raises(ExecutionError):
            StreamingExecutor(
                _ab_workload(window), HamletEngine, burst_size=8, kernel_backend="python"
            )
        with pytest.raises(ExecutionError):
            ShardedStreamingExecutor(
                _ab_workload(window), HamletEngine, burst_size=8, kernel_backend="python"
            )
        # With a policy the same cap is accepted.
        StreamingExecutor(_ab_workload(window), HamletEngine, optimizer="dynamic", burst_size=8)

    def test_open_memory_counts_pending_burst_buffer(self):
        """Buffered adaptive bursts are live state the memory gauge must see."""
        window = Window(10.0, 2.0)
        workload = [
            Query.build(
                seq("A", kleene("B")), aggregate=sum_of("B", "v"), window=window, name="mb_sum"
            ),
            Query.build(
                seq("A", kleene("B")), aggregate=avg("B", "v"), window=window, name="mb_avg"
            ),
        ]
        executor = StreamingExecutor(workload, HamletEngine, optimizer="always")
        executor.process(Event("A", 0.0, {"v": 1.0}))
        for t in range(1, 6):  # same-type run: stays buffered, no close passes
            executor.process(Event("B", float(t), {"v": 1.0}))
        (unit,) = executor._units
        (group,) = unit.shared_groups.values()
        assert len(group.burst) == 5
        assert (
            executor._open_memory_units()
            == group.engine.memory_units() + len(group.burst)
        )
        executor.finish()

    def test_engine_level_split_and_merge_partitions(self):
        """Direct pin of the engine's column state machine."""
        from repro.runtime import MultiWindowLinearEngine, UnitCompilation

        window = Window(10.0, 2.0)
        queries = [
            Query.build(
                seq("A", kleene("B")), aggregate=sum_of("B", "v"), window=window, name="col_sum"
            ),
            Query.build(
                seq("A", kleene("B")), aggregate=avg("B", "v"), window=window, name="col_avg"
            ),
        ]
        compiled = UnitCompilation(queries, share_classes=True)
        (spec,) = compiled.classes
        engine = MultiWindowLinearEngine(compiled)
        assert engine.sharing_partition(spec.index, "B") == (0, 0)
        engine.process(Event("A", 0.0, {"v": 1.0}), 0, 0)
        engine.process(Event("B", 1.0, {"v": 2.0}), 0, 0)
        # Split: the replica column copies the canonical one.
        engine.apply_burst_decision(spec, "B", frozenset(), 1)
        assert engine.sharing_partition(spec.index, "B") == (0, 1)
        assert engine.replica_coefficient_entries() == engine.replica_entry_count() > 0
        engine.process(Event("B", 2.0, {"v": 3.0}), 0, 0)
        # Merge: replicas dropped, canonical kept.
        engine.apply_burst_decision(
            spec, "B", frozenset(q.name for q in queries), 1
        )
        assert engine.sharing_partition(spec.index, "B") == (0, 0)
        assert engine.replica_coefficient_entries() == engine.replica_entry_count() == 0
        results = engine.close_window(0)
        # SUM(B.v) over trends of A B... within the window; both members
        # were maintained bit-identically through the split and merge.
        assert set(results) == {"col_sum", "col_avg"}
        with pytest.raises(ExecutionError):
            engine.sharing_partition(99, "B")

    def test_inert_groups_never_build_engines(self):
        """Lazy opening is per group: start-less groups allocate nothing."""
        window = Window(10.0, 2.0)
        events = [Event("B", float(t), {"g": t % 50}) for t in range(200)]  # no A/C
        executor = StreamingExecutor(_ab_workload(window, group_by=("g",)), HamletEngine)
        report = executor.run(events)
        assert executor.shared_group_count == 0
        assert report.metrics.partitions == 0

    def test_equal_time_out_of_sequence_rejected_per_group_engine(self):
        # Two trend-start events at the same timestamp, fed in reverse
        # creation order: the shared engine's coefficient fast path needs
        # its events strictly ordered and rejects the second feed.
        late = Event("A", 1.0)
        early = Event("C", 1.0)  # created after `late`, so late < early
        # Pinned to the reference backend: a burst-buffering backend
        # (wants_bursts) defers the feed to flush time, so the rejection
        # would surface there instead of at process().
        executor = StreamingExecutor(
            _ab_workload(Window(10.0)), HamletEngine, kernel_backend="python"
        )
        executor.process(early)
        with pytest.raises(ExecutionError):
            executor.process(late)

    def test_equal_time_out_of_sequence_rejected_at_burst_flush(self):
        # The burst-buffering path defers engine feeds, but the ordering
        # invariant still holds: the flush rejects the out-of-order run.
        pytest.importorskip("numpy")
        late = Event("A", 1.0)
        early = Event("C", 1.0)
        executor = StreamingExecutor(
            _ab_workload(Window(10.0)), HamletEngine, kernel_backend="numpy"
        )
        executor.process(early)
        executor.process(late)  # buffered, not yet fed
        with pytest.raises(ExecutionError):
            executor.finish()

    def test_equal_time_events_of_different_groups_are_accepted(self):
        # Ordering is required per (group, unit) engine, not globally: an
        # equal-timestamp interleaving across groups is fine even when the
        # creation sequence runs against the arrival order.
        second = Event("A", 1.0, {"g": 1})
        first = Event("A", 1.0, {"g": 2})  # created later, arrives first
        events = [Event("A", 0.5, {"g": 1}), first, second, Event("B", 2.0, {"g": 1})]
        workload = _ab_workload(Window(10.0), group_by=("g",))
        shared = StreamingExecutor(workload, HamletEngine).run(events)
        instances = StreamingExecutor(workload, HamletEngine, shared_windows=False).run(events)
        assert shared.totals == instances.totals

    def test_emission_order_is_close_order(self):
        window = Window(10.0, 5.0)
        emitted = []
        run_streaming(
            _ab_workload(window), self._overlap_events(60), on_window=emitted.append
        )
        ends = [r.window_end for r in emitted]
        assert ends == sorted(ends)

    def test_min_max_units_fall_back_to_per_instance(self):
        window = Window(10.0, 5.0)
        workload = Workload(
            [
                Query.build(seq("A", kleene("B")), window=window, name="swf_q1"),
                Query.build(
                    seq("A", kleene("B")), aggregate=max_of("B", "v"), window=window, name="swf_q2"
                ),
            ]
        )
        events = [
            Event("A", 0.0, {"v": 1.0}),
            Event("B", 1.0, {"v": 5.0}),
            Event("B", 6.0, {"v": 9.0}),
            Event("B", 12.0, {"v": 2.0}),
        ]
        executor = StreamingExecutor(workload, HamletEngine)
        peak_groups = 0
        for event in events:
            executor.process(event)
            peak_groups = max(peak_groups, executor.shared_group_count)
        report = executor.finish()
        batch = WorkloadExecutor(workload, HamletEngine).run(events)
        assert report.totals == batch.totals
        # The COUNT unit ran shared; the MAX unit built per-instance engines.
        assert peak_groups == 1
        assert executor.engines_created >= 1
