"""PYTHONHASHSEED-variation regression test for the sharded runtime.

The sharded driver's determinism contract is that results are
bit-identical across *interpreter hash seeds*: group-hash routing goes
through :func:`repro.runtime.sharding.stable_shard_hash` (BLAKE2b), not
the seed-randomized builtin ``hash``, and no result path iterates an
unordered set.  reprolint's RL001/RL006 guard those properties
statically; this test guards them end to end by running the same
workload in two subprocesses pinned to different ``PYTHONHASHSEED``
values and asserting byte-identical serialized ExecutionReports —
totals, per-partition results *in order*, and the per-shard routing
assignment.

String group keys are the load-bearing detail: ``hash("g1")`` differs
between the two subprocesses, so any builtin-hash routing or set-ordered
merge shows up as a diff.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Runs in a fresh interpreter; prints one canonical JSON document built
#: from the ExecutionReport, covering result values, partition order, and
#: shard routing.
_SCRIPT = """
import json
import random

from repro.events import Event
from repro.query import Query, Window, count_events, kleene, seq, sum_of
from repro.runtime import run_sharded

rng = random.Random(7)
events = []
for index in range(240):
    type_name = rng.choice(("A", "B", "C"))
    events.append(
        Event(
            type_name,
            float(index),
            {"v": float(rng.randint(0, 5)), "g": "g%d" % rng.randint(1, 5)},
        )
    )

window = Window(24.0, 6.0)
workload = [
    Query.build(
        seq("A", kleene("B")),
        group_by=("g",),
        window=window,
        aggregate=count_events("B"),
        name="q_count",
    ),
    Query.build(
        seq("C", kleene("B")),
        group_by=("g",),
        window=window,
        aggregate=sum_of("B", "v"),
        name="q_sum",
    ),
]

document = {}
for routing in ("group", "unit"):
    report = run_sharded(workload, events, shards=4, workers=0, routing=routing)
    document[routing] = {
        "totals": sorted(report.totals.items()),
        "partitions": [
            [repr(partition.key), sorted(partition.results.items())]
            for partition in report.partition_results
        ],
        "shards": [
            [shard.shard_id, shard.events, sorted(shard.report.totals.items())]
            for shard in report.shards
        ],
    }
print(json.dumps(document, sort_keys=True))
"""


def _run_with_hash_seed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, f"PYTHONHASHSEED={seed} run failed:\n{result.stderr}"
    return result.stdout


def test_sharded_reports_identical_across_hash_seeds():
    first = _run_with_hash_seed("0")
    second = _run_with_hash_seed("1")
    assert first == second, "sharded ExecutionReport varies with PYTHONHASHSEED"

    # Sanity: the run produced real results (not vacuously-equal empties).
    document = json.loads(first)
    for routing in ("group", "unit"):
        totals = dict(document[routing]["totals"])
        assert set(totals) == {"q_count", "q_sum"}
        assert any(value > 0 for value in totals.values())
        assert document[routing]["partitions"]
    # Both routing modes agree on the results themselves.
    assert document["group"]["totals"] == document["unit"]["totals"]
    # Group routing actually spread work across shards (exercises
    # stable_shard_hash, the invariant under test).
    group_shards = [entry for entry in document["group"]["shards"] if entry[1] > 0]
    assert len(group_shards) >= 2
