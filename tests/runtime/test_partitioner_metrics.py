"""Unit tests for stream partitioning and execution metrics."""

from __future__ import annotations

import pytest

from repro.events import Event
from repro.greta import GretaEngine
from repro.query import Query, Window, kleene, seq
from repro.runtime import (
    ExecutionMetrics,
    GroupWindowPartitioner,
    Stopwatch,
    StreamingExecutor,
    WorkloadExecutor,
)
from repro.runtime.partitioner import PartitionSpec, group_sort_key


class TestPartitioner:
    def test_group_and_window_routing(self):
        q = Query.build(
            seq("A", kleene("B")), group_by=["g"], window=Window(10.0, 5.0), name="pt_q1"
        )
        partitioner = GroupWindowPartitioner.for_queries([q])
        partitioner.add_all(
            [
                Event("A", 1.0, {"g": 1}),
                Event("B", 2.0, {"g": 1}),
                Event("B", 2.5, {"g": 2}),
                Event("B", 7.0, {"g": 1}),
            ]
        )
        partitions = dict(partitioner.partitions())
        # Event at t=7 with a 10s/5s sliding window belongs to instances 0 and 1;
        # partitions are keyed by the integer instance index.
        assert ((1,), 0) in partitions
        assert ((1,), 1) in partitions
        assert ((2,), 0) in partitions
        assert len(partitions[((1,), 0)]) == 3
        assert len(partitions[((1,), 1)]) == 1
        assert partitioner.routed_event_count() == 5
        assert partitioner.partition_count() == 3
        assert partitioner.window_start(((1,), 1)) == 5.0

    def test_no_group_by(self):
        spec = PartitionSpec(group_by=(), window=Window(10.0))
        partitioner = GroupWindowPartitioner(spec)
        partitioner.add(Event("A", 3.0, {"g": 9}))
        ((key, index), events), = partitioner.partitions()
        assert key == ()
        assert index == 0
        assert len(events) == 1

    def test_partitions_sorted_by_window_instance(self):
        spec = PartitionSpec(group_by=(), window=Window(10.0))
        partitioner = GroupWindowPartitioner(spec)
        partitioner.add(Event("A", 25.0))
        partitioner.add(Event("A", 3.0))
        indices = [index for (_, index), _ in partitioner.partitions()]
        assert indices == sorted(indices)

    def test_incremental_route_stores_nothing(self):
        q = Query.build(seq("A", kleene("B")), window=Window(10.0, 5.0), name="pt_q2")
        partitioner = GroupWindowPartitioner.for_queries([q])
        assert list(partitioner.route(Event("A", 7.0))) == [((), 0), ((), 1)]
        assert partitioner.partition_count() == 0

    def test_group_keys_sort_numerically_not_by_repr(self):
        # repr-sorting ordered 10 before 2; the type-tagged total order must
        # sort numbers numerically.  The same key orders the streaming
        # executor's sweeps and the sharded driver's cross-shard merge.
        q = Query.build(
            seq("A", kleene("B")), group_by=["g"], window=Window(10.0), name="pt_q4"
        )
        partitioner = GroupWindowPartitioner.for_queries([q])
        for g in (10, 2, 1, 30):
            partitioner.add(Event("A", 1.0, {"g": g}))
        keys = [key for (key, _), _ in partitioner.partitions()]
        assert keys == [(1,), (2,), (10,), (30,)]

    def test_group_sort_key_totally_orders_mixed_types(self):
        values = [(10,), (2,), ("b",), ("a",), (None,), (2.5,), (True,), ((1, "x"),)]
        ordered = sorted(values, key=group_sort_key)
        assert ordered == [(None,), (True,), (2,), (2.5,), (10,), ("a",), ("b",), ((1, "x"),)]
        # Equal-valued int/float keys stay adjacent but deterministic.
        assert sorted([(1.0,), (1,)], key=group_sort_key) == [(1,), (1.0,)]

    def test_group_sort_key_survives_huge_ints_and_non_finite_floats(self):
        # float(10**400) overflows; NaN comparisons are neither < nor > and
        # would make sorted() output depend on input order.  Both must still
        # produce one deterministic total order.
        huge = [(10**400,), (2,), (-(10**400),), (10**400 + 1,)]
        assert sorted(huge, key=group_sort_key) == [
            (-(10**400),),
            (2,),
            (10**400,),
            (10**400 + 1,),
        ]
        nan = float("nan")
        mixed = [(nan,), (5.0,), (float("inf"),), (1.0,), (float("-inf"),)]
        first = sorted(mixed, key=group_sort_key)
        second = sorted(list(reversed(mixed)), key=group_sort_key)
        assert first == second  # order-independent, hence total

    def test_group_sort_key_mixed_numbers_compare_exactly(self):
        # The finite-number bucket compares raw values: CPython's mixed
        # int/float comparison is exact, so ints one past the 2**53 float
        # precision limit order strictly — a lossy float() conversion would
        # collapse them onto their neighbors.
        near = [(2**53 + 1,), (float(2**53),), (2**53 - 1,), (2**53,)]
        assert sorted(near, key=group_sort_key) == [
            (2**53 - 1,),
            (2**53,),
            (float(2**53),),
            (2**53 + 1,),
        ]
        # Equal int/float values tie-break on repr, deterministically.
        assert sorted([(0.5,), (1,), (0,)], key=group_sort_key) == [(0,), (0.5,), (1,)]

    def test_fractional_slide_keys_are_exact_integers(self):
        # 3 * 0.1 == 0.30000000000000004: float starts misassigned boundary
        # events and made keys unequal across units; integer indices cannot.
        q = Query.build(seq("A", kleene("B")), window=Window(0.3, 0.1), name="pt_q3")
        partitioner = GroupWindowPartitioner.for_queries([q])
        keys = list(partitioner.route(Event("A", 0.3)))
        assert keys == [((), 1), ((), 2), ((), 3)]


class TestMetrics:
    def test_record_and_derive(self):
        metrics = ExecutionMetrics()
        metrics.record_partition(seconds=0.5, events=100, memory_units=40, operations=10)
        metrics.record_partition(seconds=1.5, events=300, memory_units=25, operations=20)
        assert metrics.partitions == 2
        assert metrics.total_seconds == pytest.approx(2.0)
        assert metrics.average_latency == pytest.approx(1.0)
        assert metrics.max_latency == pytest.approx(1.5)
        assert metrics.throughput == pytest.approx(200.0)
        assert metrics.peak_memory_units == 40
        assert metrics.operations == 30

    def test_empty_metrics(self):
        metrics = ExecutionMetrics()
        assert metrics.average_latency == 0.0
        assert metrics.throughput == 0.0
        assert metrics.max_latency == 0.0

    def test_merge(self):
        first = ExecutionMetrics()
        first.record_partition(1.0, 10, 5, 1)
        second = ExecutionMetrics()
        second.record_partition(2.0, 20, 50, 2)
        first.merge(second)
        assert first.partitions == 2
        assert first.peak_memory_units == 50
        assert first.events_processed == 30

    def test_wall_clock_throughput_is_distinct_from_engine_throughput(self):
        metrics = ExecutionMetrics()
        # 4 engine-seconds of work (e.g. 4 parallel shards x 1s each) that
        # elapsed in 1 wall second over 100 distinct stream events.
        metrics.record_partition(seconds=4.0, events=400, memory_units=1, operations=4)
        metrics.stream_events = 100
        metrics.wall_seconds = 1.0
        assert metrics.throughput_engine == pytest.approx(100.0)
        assert metrics.throughput == metrics.throughput_engine
        # Wall-clock throughput divides distinct events by elapsed time;
        # summed engine seconds would hide the parallelism entirely.
        assert metrics.throughput_wall == pytest.approx(100.0)
        assert ExecutionMetrics().throughput_wall == 0.0

    def test_merge_takes_max_wall_seconds(self):
        first = ExecutionMetrics()
        first.wall_seconds = 2.0
        second = ExecutionMetrics()
        second.wall_seconds = 3.0
        first.merge(second)
        # Concurrent shards elapse together: the merged wall clock is the
        # slowest member, never the sum.
        assert first.wall_seconds == 3.0

    def test_stopwatch(self):
        with Stopwatch() as watch:
            sum(range(1000))
        assert watch.elapsed >= 0.0


class TestStreamingPeakMemoryAccounting:
    """Peak memory counts live state once, not once per overlapping instance.

    Overlapping window instances of the same ``(unit, group)`` pair hold
    copies of the same event suffix; the streaming sample must not multiply
    that state by the overlap factor (BENCH_PR2 reported streaming_greta at
    9300 units against 460 for batch over identical state).
    """

    WINDOW = Window(10.0, 2.0)  # overlap factor 5

    def _queries(self):
        return [
            Query.build(seq("A", kleene("B")), window=self.WINDOW, name="mm_q1"),
            Query.build(seq("C", kleene("B")), window=self.WINDOW, name="mm_q2"),
        ]

    def _events(self, count=300):
        return [
            Event("A" if t % 9 == 0 else ("C" if t % 9 == 4 else "B"), float(t))
            for t in range(count)
        ]

    def test_per_instance_sample_dedupes_overlapping_instances(self):
        events = self._events()
        batch = WorkloadExecutor(self._queries(), GretaEngine).run(events)
        streaming = StreamingExecutor(
            self._queries(), GretaEngine, lazy_open=False, shared_windows=False
        ).run(events)
        # Eager instances replay exactly the batch partitions, so the
        # deduplicated concurrent sample can never exceed the batch peak —
        # with the old per-instance sum it was ~overlap-factor times larger.
        assert 0 < streaming.metrics.peak_memory_units <= batch.metrics.peak_memory_units

    def test_shared_windows_hold_state_once(self):
        events = self._events()
        batch = WorkloadExecutor(self._queries(), GretaEngine).run(events)
        shared = StreamingExecutor(
            self._queries(), GretaEngine, lazy_open=False
        ).run(events)
        # The shared engine keeps per-window coefficients instead of
        # duplicated graphs; its footprint stays within the batch peak of a
        # single partition as well.
        assert 0 < shared.metrics.peak_memory_units <= batch.metrics.peak_memory_units
