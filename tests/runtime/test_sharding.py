"""Sharded runtime: router determinism, batch codec, failure propagation.

The bit-identical equivalence of sharded execution against the
single-process streaming executor and the batch replay lives in
``test_streaming_equivalence.py``; this module covers the sharding
machinery itself.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HamletEngine
from repro.errors import ExecutionError
from repro.events import Event, EventBatch
from repro.optimizer import DynamicSharingOptimizer
from repro.query import Query, Window, avg, kleene, parse_pattern, seq, sum_of
from repro.runtime import (
    ShardRouter,
    ShardedStreamingExecutor,
    run_sharded,
    run_streaming,
)
from repro.runtime.sharding import stable_shard_hash

WINDOW = Window(16.0, 4.0)


def grouped_queries(window: Window = WINDOW) -> list[Query]:
    return [
        Query.build(seq("A", kleene("B")), group_by=("g",), window=window, name="shq1"),
        Query.build(seq("C", kleene("B")), group_by=("g",), window=window, name="shq2"),
        Query.build(
            parse_pattern("SEQ(A, NOT X, B+)"), group_by=("g",), window=window, name="shq3"
        ),
    ]


def ungrouped_queries(window: Window = WINDOW) -> list[Query]:
    return [
        Query.build(seq("A", kleene("B")), window=window, name="unq1"),
        Query.build(seq("C", kleene("D")), window=window, name="unq2"),
    ]


def make_events(seed: int, size: int, groups: int = 6) -> list[Event]:
    rng = random.Random(seed)
    events = []
    for index in range(size):
        type_name = rng.choices(("A", "B", "C", "D", "X"), weights=(1, 3, 1, 1, 0.2))[0]
        events.append(
            Event(
                type_name,
                float(index),
                {"v": float(rng.randint(0, 5)), "g": float(rng.randint(1, groups))},
            )
        )
    return events


class TestEventBatch:
    def test_round_trip_preserves_events_exactly(self):
        events = make_events(1, 200)
        decoded = EventBatch.from_events(events).events()
        assert decoded == events
        for original, copy in zip(events, decoded):
            assert copy.event_type == original.event_type
            assert copy.time == original.time
            assert copy.payload == original.payload
            # The (time, sequence) total order must survive the boundary.
            assert copy.sequence == original.sequence

    def test_byte_codec_round_trip(self):
        events = make_events(2, 64)
        batch = EventBatch.from_events(events)
        assert EventBatch.from_bytes(batch.to_bytes()).events() == events

    def test_interning_tables_stay_small(self):
        events = make_events(3, 500)
        batch = EventBatch.from_events(events)
        assert len(batch) == 500
        # 5 event types and one payload-key shape cross the boundary once.
        assert len(batch.event_types) <= 5

    def test_empty_batch(self):
        batch = EventBatch.from_events([])
        assert len(batch) == 0 and not batch
        assert batch.events() == []


# --------------------------------------------------------------------- #
# Hypothesis round-trip fuzz for the EventBatch codec
# --------------------------------------------------------------------- #
#: Payload values the codec must carry verbatim: numbers (ints beyond
#: 2**53, bools, finite floats), unicode text, None, and nested numeric
#: tuples.  NaN is excluded because NaN != NaN would fail any equality
#: check, not because the codec mishandles it.
_scalar_values = st.one_of(
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False, allow_infinity=True, width=64),
    st.booleans(),
    st.text(max_size=12),
    st.none(),
)
_payload_values = st.one_of(
    _scalar_values,
    st.tuples(_scalar_values, _scalar_values),
    st.lists(st.integers(min_value=-1000, max_value=1000), max_size=3).map(tuple),
)
_payloads = st.dictionaries(st.text(max_size=16), _payload_values, max_size=5)


@st.composite
def _fuzz_events(draw):
    count = draw(st.integers(min_value=0, max_value=40))
    events = []
    clock = 0.0
    for _ in range(count):
        clock += draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
        events.append(
            Event(
                draw(st.text(min_size=1, max_size=8)),
                clock,
                draw(_payloads),
            )
        )
    return events


class TestEventBatchFuzz:
    """Property: encode/decode is the identity on arbitrary event chunks.

    Both wire codecs carry the same strategy: the pickle body trivially,
    the columnar body through its typed-column classification (f64 / i64 /
    bool columns with the object-pickle fallback for big ints, None,
    strings and nested tuples) — mixed dtypes under one key, unicode keys
    and ints beyond 2**63 all land in the fallback column and must still
    round-trip exactly.
    """

    @pytest.mark.parametrize("codec", ("pickle", "columnar"))
    @settings(deadline=None, derandomize=True, max_examples=150)
    @given(events=_fuzz_events())
    def test_round_trip_is_identity(self, codec, events):
        for decoded in (
            EventBatch.from_events(events).events(),
            EventBatch.from_bytes(
                EventBatch.from_events(events).to_bytes(codec=codec)
            ).events(),
        ):
            assert decoded == events  # (type, time, sequence) equality
            for original, copy in zip(events, decoded):
                # Event.__eq__ ignores the payload; compare it explicitly,
                # and key *order* too — interning is by exact key shape.
                assert copy.payload == original.payload
                assert tuple(copy.payload) == tuple(original.payload)
                assert copy.sequence == original.sequence
                assert copy.time == original.time
                for value, copied in zip(
                    original.payload.values(), copy.payload.values()
                ):
                    # Exact-type classification: 4 must not come back 4.0.
                    assert type(copied) is type(value)

    @settings(deadline=None, derandomize=True, max_examples=60)
    @given(events=_fuzz_events())
    def test_interning_never_conflates_payload_shapes(self, events):
        batch = EventBatch.from_events(events)
        assert len(batch) == len(events)
        assert set(batch.event_types) == {event.event_type for event in events}
        # Key tuples are interned by exact shape: decoding must reproduce
        # each payload's key *order*, not just its mapping.
        for original, copy in zip(events, batch):
            assert tuple(copy.payload) == tuple(original.payload)


class TestShardRouter:
    def test_group_routing_is_deterministic_across_router_instances(self):
        events = make_events(4, 300)
        first = ShardRouter(grouped_queries(), 4)
        second = ShardRouter(grouped_queries(), 4)
        assert first.mode == "group"
        assert [first.route(event) for event in events] == [
            second.route(event) for event in events
        ]

    def test_group_routing_is_a_pure_function_of_the_group_key(self):
        router = ShardRouter(grouped_queries(), 4)
        events = make_events(5, 300)
        shard_of_group: dict[tuple, int] = {}
        for event in events:
            routed = router.route(event)
            if not routed:
                continue
            (shard,) = routed
            key = (event.get("g"),)
            assert shard == shard_of_group.setdefault(key, shard)
            assert shard == stable_shard_hash(key) % router.shards

    def test_equal_comparing_keys_route_to_one_shard(self):
        # Partitions are dicts keyed by group tuples, where 4 == 4.0 == ...
        # land in ONE partition; hashing their reprs would split it across
        # shards.  True == 1 likewise.
        for shards in (2, 3, 4, 7):
            assert (
                stable_shard_hash((4,)) % shards
                == stable_shard_hash((4.0,)) % shards
            )
            assert (
                stable_shard_hash((True,)) % shards
                == stable_shard_hash((1,)) % shards
                == stable_shard_hash((1.0,)) % shards
            )
        # ...but the string "None" is not the value None.
        assert stable_shard_hash((None,)) != stable_shard_hash(("None",))
        # Exotic numerics that compare equal as dict keys hash alike too.
        from decimal import Decimal
        from fractions import Fraction

        assert stable_shard_hash((Decimal("4"),)) == stable_shard_hash((4,))
        assert stable_shard_hash((Fraction(4),)) == stable_shard_hash((4.0,))
        assert stable_shard_hash((complex(4, 0),)) == stable_shard_hash((4,))

    def test_mixed_numeric_group_keys_match_single_process(self):
        # Regression: events carrying g=4 (int) and g=4.0 (float) form one
        # partition; sharded execution must not straddle it.
        queries = grouped_queries()
        events = [
            Event("A", 0.0, {"g": 4}),
            Event("B", 1.0, {"g": 4.0}),
            Event("B", 2.0, {"g": 4.0}),
            Event("A", 3.0, {"g": True}),
            Event("B", 4.0, {"g": 1}),
        ]
        single = run_streaming(queries, events)
        for shards in (2, 3):
            sharded = run_sharded(queries, events, workers=0, shards=shards)
            assert sharded.totals == single.totals

    def test_stable_hash_spreads_small_numeric_keys(self):
        shards = {stable_shard_hash((float(g),)) % 4 for g in range(1, 9)}
        assert len(shards) >= 2  # 8 keys must not collapse onto one shard

    def test_irrelevant_event_types_are_dropped(self):
        router = ShardRouter(grouped_queries(), 2)
        assert router.route(Event("Unrelated", 0.0, {"g": 1.0})) == ()

    def test_ungrouped_workload_falls_back_to_unit_routing(self):
        router = ShardRouter(ungrouped_queries(), 2)
        assert router.mode == "unit"
        # The two queries share no execution unit, so they split 1/1 and
        # every event goes only to the shard(s) referencing its type.
        all_names = {
            query.name for shard in range(router.shards) for query in router.shard_queries(shard)
        }
        assert all_names == {"unq1", "unq2"}
        for event_type in ("A", "B", "C", "D"):
            routed = router.route(Event(event_type, 0.0))
            assert len(routed) == 1

    def test_unit_routing_keeps_sharing_units_together(self):
        # shq1..shq3 share the Kleene B+ sub-pattern and the window, so they
        # form one execution unit: unit routing must keep them co-located.
        router = ShardRouter(grouped_queries(), 4, routing="unit")
        assert router.shards == 1
        assert len(router.shard_queries(0)) == 3

    def test_group_routing_requires_common_group_by(self):
        with pytest.raises(ExecutionError):
            ShardRouter(ungrouped_queries(), 2, routing="group")

    def test_shard_count_must_be_positive(self):
        with pytest.raises(ExecutionError):
            ShardRouter(grouped_queries(), 0)


class TestShardedStreamingExecutor:
    def test_partitions_never_straddle_shards(self):
        events = make_events(6, 400)
        executor = ShardedStreamingExecutor(grouped_queries(), workers=0, shards=3)
        report = executor.run(events)
        owner: dict[tuple, int] = {}
        for shard in report.shards:
            for partition in shard.report.partition_results:
                key = partition.key
                assert owner.setdefault(key, shard.shard_id) == shard.shard_id

    def test_shard_reports_account_for_all_routed_events(self):
        events = make_events(7, 300)
        executor = ShardedStreamingExecutor(grouped_queries(), workers=0, shards=3)
        for event in events:
            executor.process(event)
        # Live introspection reflects the in-flight run; finish() resets it.
        live_counts = executor.shard_event_counts
        report = executor.finish()
        assert report.metrics.stream_events == len(events)
        assert live_counts == tuple(s.events for s in report.shards)
        assert executor.shard_event_counts == (0, 0, 0)
        # The grouped workload references A, B, C and (under NOT) X; D events
        # are dropped at the router and reach no shard.
        relevant = sum(1 for e in events if e.event_type in ("A", "B", "C", "X"))
        assert sum(s.events for s in report.shards) == relevant

    def test_merged_partition_order_is_shard_count_invariant(self):
        events = make_events(8, 400)
        keys = None
        for shards in (1, 2, 4):
            report = run_sharded(grouped_queries(), events, workers=0, shards=shards)
            ordered = [p.key for p in report.partition_results]
            if keys is None:
                keys = ordered
            assert ordered == keys

    def test_concurrent_gauges_sum_across_shards(self):
        events = make_events(14, 300)
        report = run_sharded(grouped_queries(), events, workers=0, shards=3)
        # Shards hold their peaks concurrently: the merged report sums them
        # (merge()'s max would hide all but the largest shard).
        assert report.metrics.peak_memory_units == sum(
            s.report.metrics.peak_memory_units for s in report.shards
        )
        assert report.metrics.peak_active_windows == sum(
            s.report.metrics.peak_active_windows for s in report.shards
        )

    def test_wall_clock_metrics_populated(self):
        events = make_events(9, 200)
        report = run_sharded(grouped_queries(), events, workers=0, shards=2)
        assert report.metrics.wall_seconds > 0.0
        assert report.metrics.throughput_wall > 0.0

    def test_on_window_requires_in_process_mode(self):
        with pytest.raises(ExecutionError):
            ShardedStreamingExecutor(
                grouped_queries(), workers=2, on_window=lambda result: None
            )

    def test_shards_param_conflicts_with_workers(self):
        with pytest.raises(ExecutionError):
            ShardedStreamingExecutor(grouped_queries(), workers=2, shards=4)

    def test_incremental_reuse_starts_a_fresh_run(self):
        # finish() must reset the driver completely: a second
        # process()/finish() cycle is a new run (fresh clock and counters),
        # matching StreamingExecutor's incremental contract.
        executor = ShardedStreamingExecutor(grouped_queries(), workers=0, shards=2)
        executor.process(Event("A", 5.0, {"g": 1.0}))
        first = executor.finish()
        assert first.metrics.stream_events == 1
        executor.process(Event("A", 1.0, {"g": 1.0}))  # earlier time: new run
        executor.process(Event("B", 2.0, {"g": 1.0}))
        second = executor.finish()
        assert second.metrics.stream_events == 2
        assert sum(s.events for s in second.shards) == 2

    def test_out_of_order_events_rejected(self):
        executor = ShardedStreamingExecutor(grouped_queries(), workers=0)
        executor.process(Event("A", 5.0, {"g": 1.0}))
        with pytest.raises(ExecutionError):
            executor.process(Event("A", 1.0, {"g": 1.0}))

    def test_in_process_on_window_callback_fires(self):
        events = make_events(10, 200)
        seen: list[tuple] = []
        executor = ShardedStreamingExecutor(
            grouped_queries(),
            workers=0,
            shards=2,
            on_window=lambda result: seen.append((result.group_key, result.window_index)),
        )
        report = executor.run(events)
        assert len(seen) == report.metrics.partitions


def multi_aggregate_queries(window: Window = WINDOW) -> list[Query]:
    """One 2-member query class: gives the adaptive optimizer work to do.

    SUM and AVG are mutually sharable (AVG = SUM / COUNT); COUNT(*) would
    not be (it only shares with COUNT(*), Definition 5) and would fall into
    its own singleton class.
    """
    return [
        Query.build(
            seq("A", kleene("B")),
            aggregate=sum_of("B", "v"),
            group_by=("g",),
            window=window,
            name="maq1",
        ),
        Query.build(
            seq("A", kleene("B")),
            aggregate=avg("B", "v"),
            group_by=("g",),
            window=window,
            name="maq2",
        ),
    ]


class TestOptimizerStatisticsMerge:
    """The merged report must never drop per-shard optimizer statistics.

    Counters (decisions, shared/non-shared bursts, merges, splits) are
    shard-count invariant by construction — bursts are segmented per
    ``(group, unit)`` stream and every such stream lives wholly inside one
    shard — so the driver's merge is pinned against the single-process
    numbers, for both the adaptive shared-window path and the per-instance
    fallback path (whose engines run their own optimizers).
    """

    @staticmethod
    def counters(statistics):
        assert statistics is not None
        return (
            statistics.decisions,
            statistics.shared_bursts,
            statistics.non_shared_bursts,
            statistics.merges,
            statistics.splits,
        )

    @pytest.mark.parametrize("shards", (1, 2, 4))
    def test_adaptive_shared_path_statistics_survive_the_merge(self, shards):
        events = make_events(11, 300)
        queries = multi_aggregate_queries()
        factory = lambda: HamletEngine(DynamicSharingOptimizer())  # noqa: E731
        single = run_streaming(queries, events, factory, optimizer="dynamic")
        sharded = run_sharded(
            queries, events, factory, workers=0, shards=shards, optimizer="dynamic"
        )
        assert self.counters(sharded.optimizer_statistics) == self.counters(
            single.optimizer_statistics
        )
        assert sharded.optimizer_statistics.decisions > 0
        # Per-shard statistics stay readable on the shard sub-reports, and
        # the merged counters are exactly their sum.
        per_shard = [
            shard.report.optimizer_statistics
            for shard in sharded.shards
            if shard.report.optimizer_statistics is not None
        ]
        assert sum(s.decisions for s in per_shard) == sharded.optimizer_statistics.decisions

    def test_adaptive_statistics_survive_worker_processes(self):
        events = make_events(12, 300)
        queries = multi_aggregate_queries()
        factory = lambda: HamletEngine(DynamicSharingOptimizer())  # noqa: E731
        single = run_streaming(queries, events, factory, optimizer="dynamic")
        sharded = run_sharded(
            queries, events, factory, workers=2, batch_size=32, optimizer="dynamic"
        )
        assert self.counters(sharded.optimizer_statistics) == self.counters(
            single.optimizer_statistics
        )

    @pytest.mark.parametrize("shards", (1, 3))
    def test_per_instance_engine_statistics_survive_the_merge(self, shards):
        events = make_events(13, 300)
        factory = lambda: HamletEngine(DynamicSharingOptimizer())  # noqa: E731
        single = run_streaming(grouped_queries(), events, factory, shared_windows=False)
        sharded = run_sharded(
            grouped_queries(),
            events,
            factory,
            workers=0,
            shards=shards,
            shared_windows=False,
        )
        assert self.counters(sharded.optimizer_statistics) == self.counters(
            single.optimizer_statistics
        )
        assert sharded.optimizer_statistics.decisions > 0


class _ExplodingEngine(HamletEngine):
    """Raises mid-stream; per-instance path so ``process`` actually runs."""

    shared_window_flavor = None

    def process(self, event):
        if event.time >= 50.0:
            raise RuntimeError("engine exploded for the crash test")
        super().process(event)


class _DyingEngine(HamletEngine):
    """Kills its worker process outright (no traceback makes it back)."""

    shared_window_flavor = None

    def process(self, event):
        os._exit(23)


class TestWorkerFailurePropagation:
    def test_worker_exception_propagates_with_traceback(self):
        events = make_events(11, 200)
        with pytest.raises(ExecutionError, match="engine exploded"):
            run_sharded(
                grouped_queries(),
                events,
                _ExplodingEngine,
                workers=2,
                batch_size=32,
                shared_windows=False,
            )

    def test_worker_hard_crash_is_detected(self):
        events = make_events(12, 200)
        with pytest.raises(ExecutionError, match="died without a report"):
            run_sharded(
                grouped_queries(),
                events,
                _DyingEngine,
                workers=2,
                batch_size=32,
                shared_windows=False,
            )

    def test_driver_side_error_shuts_down_the_pool(self):
        import multiprocessing

        events = make_events(15, 100)
        executor = ShardedStreamingExecutor(
            grouped_queries(), HamletEngine, workers=2, batch_size=8
        )
        for event in events[:50]:
            executor.process(event)
        assert len(multiprocessing.active_children()) == 2
        with pytest.raises(ExecutionError, match="in-order"):
            executor.process(Event("A", 0.0, {"g": 1.0}))  # before stream time
        for process in multiprocessing.active_children():
            process.join(timeout=5.0)
        # The rejected event must not orphan workers blocked on their queues.
        assert len(multiprocessing.active_children()) == 0

    def test_multiprocess_run_matches_single_process(self):
        from collections import Counter

        events = make_events(13, 300)
        factory = HamletEngine
        single = run_streaming(grouped_queries(), events, factory)
        forked = run_sharded(
            grouped_queries(), events, factory, workers=2, batch_size=64
        )
        assert forked.totals == single.totals
        # Multiset comparison: partitions of different units share p.key, so
        # a dict keyed by it would drop all but one partition per key.
        assert Counter(
            (p.key, tuple(sorted(p.results.items()))) for p in forked.partition_results
        ) == Counter(
            (p.key, tuple(sorted(p.results.items()))) for p in single.partition_results
        )
