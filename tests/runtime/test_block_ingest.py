"""Differential suite for the columnar block-ingest fast path.

The block path (:meth:`StreamingExecutor.process_block` and the engine-side
:meth:`MultiWindowLinearEngine.process_block_run`) re-derives everything the
per-event path computes — window covering ranges, lazy opening, group
routing, kernel folds, metrics bookkeeping — from columns.  Its correctness
statement is differential and exact: feeding a stream as one
:class:`~repro.events.block.EventBlock` must be **bit-identical** to feeding
the same stream event by event, including per-partition results, abstract
operation counts and peak memory units, across execution paths (shared /
per-instance), kernel backends, lazy opening, GROUP BY, negation, and the
adaptive optimizer (which takes the per-event compat shim).

All attributes are small integers so sums are exact in float64 and ``==``
comparison is meaningful (same convention as the streaming equivalence
suite).
"""

from __future__ import annotations

import random

import pytest

from repro.core import HamletEngine
from repro.events import Event
from repro.events import columnar
from repro.events.block import EventBlock
from repro.events.stream import EventStream
from repro.optimizer import DynamicSharingOptimizer
from repro.query import (
    Query,
    Window,
    avg,
    count_events,
    kleene,
    parse_pattern,
    seq,
    sum_of,
)
from repro.query.predicates import attr_less
from repro.runtime import StreamingExecutor

TYPE_NAMES = ("A", "B", "C", "D", "X")

SLIDING = Window(32.0, 8.0)
TUMBLING = Window(32.0)
#: Fractional slide: ``k * 3.2`` accumulates float error, exercising the
#: vectorized covering-range arithmetic against the snapped scalar division.
FRACTIONAL = Window(16.0, 3.2)


def make_stream(seed: int, size: int) -> list[Event]:
    """A random in-order stream with integer-valued attributes."""
    rng = random.Random(seed)
    weights = [1.0, 3.0, 1.0, 1.0, 0.08]
    events = []
    for index in range(size):
        type_name = rng.choices(TYPE_NAMES, weights=weights)[0]
        events.append(
            Event(
                type_name,
                float(index),
                {"v": float(rng.randint(0, 6)), "g": float(rng.randint(1, 2))},
            )
        )
    return events


def workload(window: Window, *, group_by=()) -> list[Query]:
    """Shared-Kleene workload mixing COUNT(*) / COUNT(E) / SUM / AVG and NOT."""
    return [
        Query.build(seq("A", kleene("B")), group_by=group_by, window=window, name="bk_q1"),
        Query.build(seq("C", kleene("B")), group_by=group_by, window=window, name="bk_q2"),
        Query.build(
            seq("A", kleene("B")),
            predicates=[attr_less("v", 4.0, event_type="B")],
            group_by=group_by,
            window=window,
            name="bk_q3",
        ),
        Query.build(
            seq("C", kleene("B"), "D"),
            aggregate=sum_of("B", "v"),
            group_by=group_by,
            window=window,
            name="bk_q4",
        ),
        Query.build(
            seq("A", kleene("B")),
            aggregate=avg("B", "v"),
            group_by=group_by,
            window=window,
            name="bk_q5",
        ),
        Query.build(
            seq("D", kleene("B")),
            aggregate=count_events("B"),
            group_by=group_by,
            window=window,
            name="bk_q6",
        ),
        Query.build(
            parse_pattern("SEQ(A, NOT X, B+)"), group_by=group_by, window=window, name="bk_q7"
        ),
    ]


def partition_tuples(report):
    """Exact per-partition fingerprint: key, index, results and event count."""
    return [
        (p.group_key, p.window_index, dict(p.results), p.events)
        for p in report.partition_results
    ]


def assert_reports_identical(per_event, block):
    assert block.totals == per_event.totals
    assert partition_tuples(block) == partition_tuples(per_event)
    assert block.metrics.operations == per_event.metrics.operations
    assert block.metrics.peak_memory_units == per_event.metrics.peak_memory_units
    assert block.metrics.stream_events == per_event.metrics.stream_events
    assert block.metrics.events_processed == per_event.metrics.events_processed


def run_pair(queries, events, **kwargs):
    """Run the same workload per-event and as one block; return both reports."""
    factory = kwargs.pop("engine_factory", HamletEngine)
    per_event = StreamingExecutor(queries, factory, **kwargs).run(events)
    block = StreamingExecutor(queries, factory, **kwargs).run(
        EventBlock.from_events(events)
    )
    return per_event, block


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize(
    "window", (TUMBLING, SLIDING, FRACTIONAL), ids=("tumbling", "sliding", "fractional")
)
def test_block_ingest_bit_identical(seed, window):
    events = make_stream(seed, 400)
    assert_reports_identical(*run_pair(workload(window), events))


@pytest.mark.parametrize("seed", range(3))
def test_block_ingest_with_group_by(seed):
    events = make_stream(seed, 400)
    assert_reports_identical(*run_pair(workload(SLIDING, group_by=("g",)), events))


@pytest.mark.parametrize("lazy_open", (True, False), ids=("lazy", "eager"))
@pytest.mark.parametrize("shared_windows", (True, False), ids=("shared", "instances"))
def test_block_ingest_across_paths(lazy_open, shared_windows):
    events = make_stream(11, 400)
    per_event, block = run_pair(
        workload(SLIDING, group_by=("g",)),
        events,
        lazy_open=lazy_open,
        shared_windows=shared_windows,
    )
    assert_reports_identical(per_event, block)


@pytest.mark.parametrize("backend", ("python", "numpy", "auto"))
def test_block_ingest_across_kernel_backends(backend):
    # "auto" runs with or without numpy: it degrades to the reference
    # backend per run when the vectorized one is unavailable.
    pytest.importorskip("numpy") if backend == "numpy" else None
    events = make_stream(5, 400)
    per_event, block = run_pair(
        workload(SLIDING), events, kernel_backend=backend
    )
    assert_reports_identical(per_event, block)


def test_block_ingest_adaptive_optimizer_compat_shim():
    # Adaptive configs buffer bursts with their own flush timing; the block
    # path must fall back to exact per-event processing.
    events = make_stream(3, 400)
    per_event, block = run_pair(
        workload(SLIDING),
        events,
        engine_factory=lambda: HamletEngine(DynamicSharingOptimizer()),
        optimizer=DynamicSharingOptimizer,
    )
    assert_reports_identical(per_event, block)


def test_block_from_wire_bytes_matches_from_events():
    events = make_stream(9, 300)
    data = columnar.encode_events(events, columnar.CODEC_COLUMNAR)
    queries = workload(SLIDING, group_by=("g",))
    from_events = StreamingExecutor(queries, HamletEngine).run(EventBlock.from_events(events))
    from_bytes = StreamingExecutor(queries, HamletEngine).run(EventBlock.from_bytes(data))
    assert_reports_identical(from_events, from_bytes)


def test_block_slices_match_whole_block():
    # Feeding a block in consecutive zero-copy slices equals feeding it whole.
    events = make_stream(13, 300)
    block = EventBlock.from_events(events)
    queries = workload(SLIDING)
    whole = StreamingExecutor(queries, HamletEngine)
    whole.process_block(block)
    whole_report = whole.finish()
    sliced = StreamingExecutor(queries, HamletEngine)
    for start in range(0, len(block), 37):
        sliced.process_block(block.slice(start, min(start + 37, len(block))))
    sliced_report = sliced.finish()
    assert_reports_identical(whole_report, sliced_report)


def test_block_interleaved_with_events():
    # Blocks and loose events can interleave on one executor.
    events = make_stream(17, 300)
    block = EventBlock.from_events(events)
    queries = workload(SLIDING)
    reference = StreamingExecutor(queries, HamletEngine)
    for event in events:
        reference.process(event)
    reference_report = reference.finish()
    mixed = StreamingExecutor(queries, HamletEngine)
    for event in events[:100]:
        mixed.process(event)
    mixed.process_block(block.slice(100, len(block)))
    mixed_report = mixed.finish()
    assert_reports_identical(reference_report, mixed_report)


def test_event_stream_to_block_roundtrip():
    events = make_stream(21, 200)
    stream = EventStream(events)
    block = stream.to_block()
    queries = workload(TUMBLING)
    assert_reports_identical(
        StreamingExecutor(queries, HamletEngine).run(events),
        StreamingExecutor(queries, HamletEngine).run(block),
    )


def test_out_of_order_block_raises():
    events = [Event("A", 5.0, {"v": 1.0}), Event("A", 1.0, {"v": 1.0})]
    executor = StreamingExecutor(workload(TUMBLING), HamletEngine)
    with pytest.raises(Exception):
        executor.process_block(EventBlock.from_events(events))
