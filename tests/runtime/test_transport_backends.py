"""Transport and kernel-backend matrix: same bits through every path.

Two orthogonal swappable pieces joined this runtime: *how batches cross
the process boundary* (pickled blobs vs columnar buffers in shared-memory
slab rings) and *which kernel folds bursts* (the pure-Python reference vs
NumPy closed forms).  Neither may change a single result bit on the
integer-valued equivalence workloads — the differential matrix here pins
every {backend} x {transport} x {shard count} combination against the
single-process reference.  The NumPy backend's float-tolerance contract
(relative ``1e-9`` once intermediates leave the exact-integer f64 range)
gets its own non-integer workload test.

The slab-ring machinery itself (recycling, oversize fallback, teardown,
crash cleanup — the "no leaked segments" contract) is unit-tested at the
bottom against a live ``/dev/shm``.
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import random

import pytest

from repro.core import HamletEngine, resolve_kernel_backend
from repro.core.kernels import KERNEL_BACKEND_ENV, PythonKernelBackend
from repro.errors import ExecutionError
from repro.events import Event
from repro.query import Query, Window, avg, kleene, seq, sum_of
from repro.runtime import (
    ShardedStreamingExecutor,
    SlabRing,
    run_sharded,
    run_streaming,
    run_workload,
)
from repro.runtime.transport import SEGMENT_PREFIX, ring_slots, validate_transport

try:
    import numpy  # noqa: F401

    _HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised on pure-python installs
    _HAS_NUMPY = False

BACKENDS = (
    "python",
    pytest.param(
        "numpy",
        marks=pytest.mark.skipif(not _HAS_NUMPY, reason="numpy not installed"),
    ),
)

WINDOW = Window(32.0, 8.0)


def make_stream(seed: int, size: int = 400) -> list[Event]:
    """Bursty integer-valued stream: long same-type runs feed the folds."""
    rng = random.Random(seed)
    events = []
    type_name = "A"
    for index in range(size):
        if rng.random() < 0.15:  # switch types rarely -> maximal runs
            type_name = rng.choice("ABC")
        events.append(
            Event(
                type_name,
                float(index),
                {"v": float(rng.randint(0, 6)), "g": float(rng.randint(1, 3))},
            )
        )
    return events


def workload(group_by=("g",)) -> list[Query]:
    return [
        Query.build(seq("A", kleene("B")), group_by=group_by, window=WINDOW, name="q1"),
        Query.build(
            seq("A", kleene("B")),
            aggregate=sum_of("B", "v"),
            group_by=group_by,
            window=WINDOW,
            name="q2",
        ),
        Query.build(
            seq("C", kleene("B")),
            aggregate=avg("B", "v"),
            group_by=group_by,
            window=WINDOW,
            name="q3",
        ),
    ]


def partition_multiset(report):
    from collections import Counter

    return Counter(
        (p.key, tuple(sorted(p.results.items()))) for p in report.partition_results
    )


def leaked_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


# --------------------------------------------------------------------- #
# The differential matrix
# --------------------------------------------------------------------- #
class TestBackendTransportMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("transport", ("pickle", "shm"))
    @pytest.mark.parametrize("shards", (1, 2, 4))
    def test_matrix_bit_identical_on_integer_workloads(
        self, backend, transport, shards
    ):
        events = make_stream(3)
        queries = workload()
        reference = run_streaming(queries, events)
        assert reference.totals == run_workload(queries, events).totals
        sharded = run_sharded(
            queries,
            events,
            workers=shards,
            batch_size=64,
            kernel_backend=backend,
            transport=transport,
        )
        # Integer-valued attributes keep every intermediate < 2**53, where
        # the NumPy closed forms are exact too — so the whole matrix is
        # held to bit-identity, not just the python column.
        assert sharded.totals == reference.totals
        assert partition_multiset(sharded) == partition_multiset(reference)
        assert not leaked_segments()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_in_process_shards_accept_transport_inertly(self, backend):
        events = make_stream(4)
        queries = workload()
        reference = run_streaming(queries, events)
        for transport in ("pickle", "shm"):
            sharded = run_sharded(
                queries,
                events,
                workers=0,
                shards=2,
                kernel_backend=backend,
                transport=transport,
            )
            assert sharded.totals == reference.totals

    def test_oversize_batches_fall_back_to_the_queue(self):
        events = make_stream(5)
        queries = workload()
        reference = run_streaming(queries, events)
        sharded = run_sharded(
            queries,
            events,
            workers=2,
            batch_size=64,
            transport="shm",
            slab_bytes=64,  # every batch oversized -> raw path end to end
        )
        assert sharded.totals == reference.totals
        assert not leaked_segments()

    @pytest.mark.skipif(not _HAS_NUMPY, reason="numpy not installed")
    def test_numpy_tolerance_contract_on_non_integer_values(self):
        # Non-integer measures make the closed form reassociate genuinely
        # different float sums; the contract is relative 1e-9, not bits.
        rng = random.Random(11)
        events = []
        type_name = "A"
        for index in range(300):
            if rng.random() < 0.1:
                type_name = rng.choice("AB")
            events.append(
                Event(type_name, float(index), {"v": rng.random(), "g": 1.0})
            )
        queries = workload()
        reference = run_streaming(queries, events, kernel_backend="python")
        folded = run_streaming(queries, events, kernel_backend="numpy")
        assert set(folded.totals) == set(reference.totals)
        for name, value in reference.totals.items():
            assert folded.totals[name] == pytest.approx(
                value, rel=1e-9, abs=1e-12
            )

    @pytest.mark.skipif(not _HAS_NUMPY, reason="numpy not installed")
    def test_numpy_backend_folds_bursts_without_an_optimizer(self):
        # wants_bursts turns burst buffering on even with the static plan;
        # burst_size is legal and the fold stays equivalent.
        events = make_stream(6)
        queries = workload()
        reference = run_streaming(queries, events)
        folded = run_streaming(
            queries, events, kernel_backend="numpy", burst_size=16
        )
        assert folded.totals == reference.totals

    def test_ops_accounting_is_backend_invariant(self):
        events = make_stream(7)
        queries = workload()
        reference = run_streaming(queries, events, kernel_backend="python")
        if _HAS_NUMPY:
            folded = run_streaming(queries, events, kernel_backend="numpy")
            assert folded.metrics.operations == reference.metrics.operations


# --------------------------------------------------------------------- #
# Backend resolution
# --------------------------------------------------------------------- #
class TestBackendResolution:
    def test_unknown_backend_name_lists_choices(self):
        with pytest.raises(ExecutionError, match="python"):
            resolve_kernel_backend("fortran")

    def test_env_default_and_instance_passthrough(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert resolve_kernel_backend(None).name == "python"
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "python")
        assert resolve_kernel_backend(None).name == "python"
        backend = PythonKernelBackend()
        assert resolve_kernel_backend(backend) is backend

    def test_sharded_executor_validates_transport_and_backend_up_front(self):
        with pytest.raises(ExecutionError, match="transport"):
            ShardedStreamingExecutor(workload(), workers=2, transport="carrier-pigeon")
        with pytest.raises(ExecutionError, match="kernel backend"):
            ShardedStreamingExecutor(workload(), workers=2, kernel_backend="fortran")

    def test_validate_transport(self):
        assert validate_transport("pickle") == "pickle"
        assert validate_transport("shm") == "shm"
        with pytest.raises(ExecutionError, match="transport"):
            validate_transport("tcp")


# --------------------------------------------------------------------- #
# Slab-ring machinery
# --------------------------------------------------------------------- #
class TestSlabRing:
    def test_acquire_write_ack_recycle(self):
        context = multiprocessing.get_context()
        ring = SlabRing(context, slots=2, slab_bytes=16)
        try:
            first = ring.acquire(poll_seconds=0.01, on_stall=lambda: None)
            second = ring.acquire(poll_seconds=0.01, on_stall=lambda: None)
            assert {first, second} == {0, 1}
            ring.write(first, b"0123456789abcdef")
            # Exhausted: acquire must wait on acks and run the stall hook.
            stalls = []

            def on_stall():
                stalls.append(1)
                if len(stalls) >= 2:
                    ring.ack_send.send(first)  # a worker acks mid-wait

            third = ring.acquire(poll_seconds=0.01, on_stall=on_stall)
            assert third == first and stalls
        finally:
            ring.close()
        assert not leaked_segments()

    def test_fits_respects_slab_capacity(self):
        context = multiprocessing.get_context()
        ring = SlabRing(context, slots=1, slab_bytes=8)
        try:
            assert ring.fits(b"x" * 8)
            assert not ring.fits(b"x" * 9)
        finally:
            ring.close()

    def test_segment_name_is_recognizable_and_unlinked_on_close(self):
        context = multiprocessing.get_context()
        ring = SlabRing(context, slots=1, slab_bytes=8)
        name = ring.name.lstrip("/")
        assert name.startswith(SEGMENT_PREFIX)
        assert os.path.exists(f"/dev/shm/{name}")
        ring.close()
        assert not os.path.exists(f"/dev/shm/{name}")
        ring.close()  # idempotent

    def test_dropped_ring_is_unlinked_by_the_finalizer(self):
        context = multiprocessing.get_context()
        ring = SlabRing(context, slots=1, slab_bytes=8)
        name = ring.name.lstrip("/")
        assert os.path.exists(f"/dev/shm/{name}")
        del ring
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_invalid_geometry(self):
        context = multiprocessing.get_context()
        with pytest.raises(ExecutionError, match="geometry"):
            SlabRing(context, slots=0, slab_bytes=8)

    def test_ring_slots_covers_queue_bound_plus_decode(self):
        assert ring_slots(8) == 10


class _ExplodingEngine(HamletEngine):
    """Raises mid-stream; per-instance path so ``process`` actually runs."""

    shared_window_flavor = None

    def process(self, event):
        if event.time >= 50.0:
            raise RuntimeError("engine exploded for the transport crash test")
        super().process(event)


class _DyingEngine(HamletEngine):
    """Kills its worker process outright (no traceback makes it back)."""

    shared_window_flavor = None

    def process(self, event):
        os._exit(23)


class TestShmCrashCleanup:
    """A dead worker must leave neither deadlock nor segment behind."""

    def test_worker_exception_unlinks_every_ring(self):
        with pytest.raises(ExecutionError, match="engine exploded"):
            run_sharded(
                workload(),
                make_stream(8),
                _ExplodingEngine,
                workers=2,
                batch_size=32,
                shared_windows=False,
                transport="shm",
            )
        assert not leaked_segments()

    def test_worker_hard_crash_unlinks_every_ring(self):
        with pytest.raises(ExecutionError, match="died without a report"):
            run_sharded(
                workload(),
                make_stream(9),
                _DyingEngine,
                workers=2,
                batch_size=32,
                shared_windows=False,
                transport="shm",
                max_inflight=1,
                slab_bytes=1024,
            )
        assert not leaked_segments()
