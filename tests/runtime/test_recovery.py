"""Supervised worker recovery: the kill-point matrix, tier-1 sized.

The fault-tolerance contract (docs/DESIGN.md, "Fault tolerance") is that
a shard worker killed at *any* planted point — pre-fold,
mid-batch-decode, post-close-pre-ack, pre-report, by ``os._exit`` or
self-SIGKILL — is restored from its last checkpoint, replayed, and the
merged report comes out **bit-identical** to an uninterrupted run, with
no leaked shared-memory segments or orphaned checkpoint temp files.
This file runs a tier-1-sized slice of that matrix through
:func:`faultline.run_differential` (the full sweep is ``python -m
faultline``; the randomized version is ``benchmarks/soak.py`` — see
docs/TESTING.md, "soak tier") plus the failure-path pins: crash
diagnostics when recovery is off, restart-budget exhaustion, the spec
grammar, and epoch-scoped trigger arming.
"""

from __future__ import annotations

import glob
import random

import pytest

from faultline import checkpoint_temp_files, run_differential
from repro.core import HamletEngine
from repro.errors import ExecutionError, WorkerCrashError
from repro.events import Event
from repro.query import Query, Window, kleene, seq
from repro.runtime import ShardedStreamingExecutor
from repro.runtime.faultpoints import (
    FAULT_EXIT_CODE,
    FAULTLINE_ENV,
    KILL_POINTS,
    FaultTrigger,
    parse_faultline,
    resolve_fault_hook,
)

WINDOW = Window(16.0, 4.0)


class _ExplodingEngine(HamletEngine):
    """Raises mid-stream; per-instance path so ``process`` actually runs."""

    shared_window_flavor = None

    def process(self, event):
        if event.time >= 50.0:
            raise RuntimeError("engine exploded for the recovery crash test")
        super().process(event)


def _workload() -> list[Query]:
    return [
        Query.build(seq("A", kleene("B")), group_by=("g",), window=WINDOW, name="rcq1"),
        Query.build(seq("C", kleene("B")), group_by=("g",), window=WINDOW, name="rcq2"),
    ]


def _stream(size: int = 1500, seed: int = 11) -> list[Event]:
    rng = random.Random(seed)
    return [
        Event(
            rng.choices(("A", "B", "C"), weights=(1, 3, 1))[0],
            float(index) * 0.25,
            {"g": float(rng.randint(1, 6))},
        )
        for index in range(size)
    ]


def _assert_no_ring_leak():
    assert glob.glob("/dev/shm/repro-ring-*") == []


# --------------------------------------------------------------------- #
# The kill-point matrix (tier-1 slice; full sweep: python -m faultline)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("transport", ["pickle", "shm"])
@pytest.mark.parametrize("point", KILL_POINTS)
def test_sigkill_at_every_point_recovers_bit_identically(point, transport):
    nth = 1 if point == "pre-report" else 3
    result = run_differential(
        _workload,
        _stream,
        spec=f"{point}@1:{nth}:kill",
        workers=2,
        transport=transport,
    )
    assert result.identical, f"{point}/{transport}: recovered report differs"
    assert result.recovery is not None and result.recovery.restarts == 1
    assert result.recovery.checkpoints >= 1
    assert result.leaked_temporaries == []
    _assert_no_ring_leak()


def test_exit_mode_death_recovers_too():
    result = run_differential(
        _workload, _stream, spec="post-close-pre-ack@0:2:exit", workers=2
    )
    assert result.identical
    assert result.recovery.restarts == 1


@pytest.mark.parametrize("transport", ["pickle", "shm"])
@pytest.mark.parametrize("workers", [1, 4])
def test_recovery_is_shard_count_invariant(workers, transport):
    result = run_differential(
        _workload,
        _stream,
        spec="pre-fold@0:2:kill",
        workers=workers,
        transport=transport,
    )
    assert result.identical
    assert result.recovery.restarts == 1
    _assert_no_ring_leak()


def test_double_kill_two_shards_same_run():
    result = run_differential(
        _workload,
        _stream,
        spec="pre-fold@0:2:kill;post-close-pre-ack@1:3:kill",
        workers=2,
    )
    assert result.identical
    assert result.recovery.restarts == 2


def test_replay_counters_are_populated():
    result = run_differential(
        _workload, _stream, spec="post-close-pre-ack@0:4:kill", workers=2
    )
    assert result.identical
    assert result.recovery.replayed_batches >= 1
    assert result.recovery.replayed_events >= 1
    assert result.recovery.checkpoint_bytes > 0


# --------------------------------------------------------------------- #
# Failure paths
# --------------------------------------------------------------------- #
def test_crash_without_recovery_raises_worker_crash_error(monkeypatch):
    monkeypatch.setenv(FAULTLINE_ENV, "pre-fold@0:1:kill")
    executor = ShardedStreamingExecutor(_workload(), workers=2)  # no checkpoint_dir
    with pytest.raises(WorkerCrashError, match="died without a report") as excinfo:
        executor.run(_stream())
    error = excinfo.value
    assert error.shard_id == 0
    assert error.exit_code == -9
    assert "SIGKILL" in str(error)
    _assert_no_ring_leak()


def test_exit_code_death_is_reported_distinctly(monkeypatch):
    monkeypatch.setenv(FAULTLINE_ENV, "pre-fold@0:1:exit")
    executor = ShardedStreamingExecutor(_workload(), workers=2)
    with pytest.raises(WorkerCrashError, match=f"exit code {FAULT_EXIT_CODE}"):
        executor.run(_stream())


def test_max_restarts_exhaustion(monkeypatch, tmp_path):
    """``eany`` re-arms every incarnation: the budget runs out, and the
    error still carries the diagnostics of the last death."""
    monkeypatch.setenv(FAULTLINE_ENV, "pre-fold@0:1:kill:eany")
    executor = ShardedStreamingExecutor(
        _workload(), workers=2, checkpoint_dir=str(tmp_path), max_restarts=2
    )
    with pytest.raises(WorkerCrashError, match="died without a report") as excinfo:
        executor.run(_stream())
    assert excinfo.value.shard_id == 0
    assert excinfo.value.exit_code == -9
    assert checkpoint_temp_files(str(tmp_path)) == []
    _assert_no_ring_leak()


def test_worker_exceptions_still_ship_tracebacks(tmp_path):
    """Recovery handles deaths, not bugs: a raising engine is still an
    ExecutionError with the worker traceback, even with recovery on."""
    executor = ShardedStreamingExecutor(
        _workload(),
        engine_factory=_ExplodingEngine,
        workers=2,
        checkpoint_dir=str(tmp_path),
    )
    with pytest.raises(ExecutionError, match="engine exploded"):
        executor.run(_stream(600))


def test_constructor_validation():
    with pytest.raises(ExecutionError, match="checkpoint interval"):
        ShardedStreamingExecutor(_workload(), workers=1, checkpoint_dir="x", checkpoint_interval=0)
    with pytest.raises(ExecutionError, match="max_restarts"):
        ShardedStreamingExecutor(_workload(), workers=1, checkpoint_dir="x", max_restarts=-1)
    with pytest.raises(ExecutionError, match="replay_limit"):
        ShardedStreamingExecutor(_workload(), workers=1, checkpoint_dir="x", replay_limit=1)


def test_local_mode_checkpoints_without_processes(tmp_path):
    """workers=0 still writes restorable checkpoints (no supervisor)."""
    executor = ShardedStreamingExecutor(
        _workload(), workers=0, shards=2, checkpoint_dir=str(tmp_path), checkpoint_interval=1
    )
    report = executor.run(_stream(800))
    assert report.recovery is not None
    assert report.recovery.checkpoints >= 1
    assert checkpoint_temp_files(str(tmp_path)) == []


# --------------------------------------------------------------------- #
# Spec grammar + epoch arming
# --------------------------------------------------------------------- #
class TestFaultlineSpec:
    def test_full_grammar(self):
        triggers = parse_faultline("post-close-pre-ack@1:3:kill:e2")
        assert triggers == [
            FaultTrigger(point="post-close-pre-ack", shard=1, nth=3, mode="kill", epoch=2)
        ]

    def test_defaults(self):
        (trigger,) = parse_faultline("pre-fold")
        assert (trigger.shard, trigger.nth, trigger.mode, trigger.epoch) == (
            None,
            1,
            "exit",
            0,
        )

    def test_eany_arms_every_incarnation(self):
        (trigger,) = parse_faultline("pre-fold:eany")
        assert trigger.epoch is None

    def test_multiple_triggers(self):
        assert len(parse_faultline("pre-fold@0; pre-report@1:kill")) == 2

    @pytest.mark.parametrize(
        "bad",
        ["warp-core-breach", "pre-fold@x", "pre-fold:0", "pre-fold:sideways"],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ExecutionError, match="faultline spec"):
            parse_faultline(bad)

    def test_hook_is_none_when_unarmed(self, monkeypatch):
        monkeypatch.delenv(FAULTLINE_ENV, raising=False)
        assert resolve_fault_hook(0) is None

    def test_hook_filters_by_shard(self, monkeypatch):
        monkeypatch.setenv(FAULTLINE_ENV, "pre-fold@1:kill")
        assert resolve_fault_hook(0) is None
        assert resolve_fault_hook(1) is not None

    def test_hook_filters_by_epoch(self, monkeypatch):
        """Default e0: a respawned incarnation does not re-arm its own
        death — the property that makes recovery terminate at all."""
        monkeypatch.setenv(FAULTLINE_ENV, "pre-fold@0:kill")
        assert resolve_fault_hook(0, epoch=0) is not None
        assert resolve_fault_hook(0, epoch=1) is None

    def test_eany_hook_arms_every_epoch(self, monkeypatch):
        monkeypatch.setenv(FAULTLINE_ENV, "pre-fold@0:kill:eany")
        assert resolve_fault_hook(0, epoch=0) is not None
        assert resolve_fault_hook(0, epoch=5) is not None
