"""Property-based differential suite for adaptive burst-driven sharing.

The adaptive streaming runtime (``StreamingExecutor(optimizer=...)``) makes
a per-burst sharing decision for every eligible query class and splits or
merges the multi-window engine's coefficient columns mid-stream.  Its
correctness contract is *differential*: whatever the policy decides, the
results must be **bit-identical** to both static extremes (always share /
never share), to the non-adaptive static plan, and to the batch replay
reference — including the per-window partition results, for GROUP BY,
negation (leading and trailing NOT), tumbling / sliding / fractional
windows, burst caps, and 1/2/4 shards.

Hypothesis generates the workloads (query classes of 1–4 computationally
identical members mixing COUNT(*) / SUM / AVG / COUNT(E), optionally with
negation classes riding along) and the bursty streams (same-type runs of
varying length separated by varying gaps — the regime where per-burst
decisions actually flip).  Attribute values are small integers so float64
sums are exact and ``==`` is meaningful (see ``docs/DESIGN.md``).

The suite is derandomized: like every other deterministic gate in this
repo, a CI run must not be flaky — failures found here reproduce locally.
"""

from __future__ import annotations

import random
from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import HamletEngine
from repro.events import Event
from repro.optimizer import DynamicSharingOptimizer
from repro.query import (
    Query,
    Window,
    avg,
    count_events,
    kleene,
    parse_pattern,
    seq,
    sum_of,
)
from repro.runtime import run_sharded, run_streaming, run_workload

SETTINGS = settings(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

WINDOWS = (Window(32.0), Window(32.0, 8.0), Window(16.0, 3.2))

#: Pattern catalog: the first two are computationally identical up to the
#: aggregate (one class of up to 4 members each); the negation patterns
#: exercise the slow path and the trailing-NOT readout inside classes.
PATTERNS = (
    ("pa", lambda: seq("A", kleene("B"))),
    ("pc", lambda: seq("C", kleene("B"))),
    ("pn", lambda: parse_pattern("SEQ(A, NOT X, B+)")),
    ("pt", lambda: parse_pattern("SEQ(C, B+, NOT X)")),
)

AGGREGATES = (
    ("count", lambda: None),
    ("sum", lambda: sum_of("B", "v")),
    ("avg", lambda: avg("B", "v")),
    ("events", lambda: count_events("B")),
)


@st.composite
def workloads(draw):
    """A workload of 1–4 query classes with 1–4 identical members each."""
    window = draw(st.sampled_from(WINDOWS))
    group_by = draw(st.sampled_from(((), ("g",))))
    queries = []
    for key, pattern_factory in PATTERNS:
        members = draw(st.integers(min_value=0, max_value=4))
        for position in range(members):
            name, aggregate_factory = AGGREGATES[position]
            aggregate = aggregate_factory()
            queries.append(
                Query.build(
                    pattern_factory(),
                    **({"aggregate": aggregate} if aggregate is not None else {}),
                    group_by=group_by,
                    window=window,
                    name=f"adp_{key}_{name}",
                )
            )
    if not queries:
        queries.append(
            Query.build(seq("A", kleene("B")), group_by=group_by, window=window, name="adp_only")
        )
    return queries


@st.composite
def bursty_streams(draw):
    """Same-type runs of drawn lengths with drawn inter-run gaps."""
    runs = draw(
        st.lists(
            st.tuples(
                st.sampled_from("ABCX"),
                st.integers(min_value=1, max_value=10),  # run length
                st.integers(min_value=1, max_value=6),  # gap before the run
            ),
            min_size=4,
            max_size=30,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(seed)
    events = []
    clock = 0.0
    for type_name, length, gap in runs:
        clock += float(gap)
        for _ in range(length):
            events.append(
                Event(
                    type_name,
                    clock,
                    {"v": float(rng.randint(0, 6)), "g": float(rng.randint(1, 2))},
                )
            )
            clock += 1.0
    return events


def partition_multiset(report) -> Counter:
    """Every emitted partition (units of one key kept apart via Counter)."""
    return Counter(
        (p.key, tuple(sorted(p.results.items()))) for p in report.partition_results
    )


def engine_factory():
    return HamletEngine(DynamicSharingOptimizer())


@SETTINGS
@given(queries=workloads(), events=bursty_streams())
def test_adaptive_matches_static_extremes_and_batch(queries, events):
    """adaptive == always-share == never-share == static plan == batch."""
    batch = run_workload(queries, events, engine_factory)
    reference = run_streaming(queries, events, engine_factory)
    assert reference.totals == batch.totals
    reference_partitions = partition_multiset(reference)
    for policy in ("dynamic", "always", "never", "static"):
        report = run_streaming(queries, events, engine_factory, optimizer=policy)
        assert report.totals == batch.totals, policy
        assert partition_multiset(report) == reference_partitions, policy
        # Adaptive runs always carry decision statistics (possibly empty).
        assert report.optimizer_statistics is not None


@SETTINGS
@given(
    queries=workloads(),
    events=bursty_streams(),
    cap=st.sampled_from((1, 2, 5, None)),
)
def test_burst_cap_never_changes_results(queries, events, cap):
    """Decision granularity (the burst cap) must not leak into results."""
    reference = run_streaming(queries, events, engine_factory, optimizer="dynamic")
    capped = run_streaming(
        queries, events, engine_factory, optimizer="dynamic", burst_size=cap
    )
    assert capped.totals == reference.totals
    assert partition_multiset(capped) == partition_multiset(reference)


@SETTINGS
@given(queries=workloads(), events=bursty_streams())
def test_adaptive_on_per_instance_fallback_is_inert(queries, events):
    """``shared_windows=False`` has no burst path; policies change nothing."""
    reference = run_streaming(queries, events, engine_factory, shared_windows=False)
    for policy in ("dynamic", "never"):
        report = run_streaming(
            queries, events, engine_factory, shared_windows=False, optimizer=policy
        )
        assert report.totals == reference.totals
        assert partition_multiset(report) == partition_multiset(reference)


@SETTINGS
@given(
    queries=workloads(),
    events=bursty_streams(),
    shards=st.sampled_from((1, 2, 4)),
    policy=st.sampled_from(("dynamic", "never")),
)
def test_sharded_adaptive_bit_identical_and_decision_invariant(
    queries, events, shards, policy
):
    """1/2/4 shards reproduce the single-process bits *and* decisions.

    Bursts are segmented per ``(group, unit)`` stream and every such stream
    lives wholly inside one shard, so the merged decision counts must be
    identical whatever the shard count — not just the results.
    """
    single = run_streaming(queries, events, engine_factory, optimizer=policy)
    sharded = run_sharded(
        queries, events, engine_factory, workers=0, shards=shards, optimizer=policy
    )
    assert sharded.totals == single.totals
    assert partition_multiset(sharded) == partition_multiset(single)
    ours, theirs = sharded.optimizer_statistics, single.optimizer_statistics
    assert ours is not None and theirs is not None
    assert (
        ours.decisions,
        ours.shared_bursts,
        ours.non_shared_bursts,
        ours.merges,
        ours.splits,
    ) == (
        theirs.decisions,
        theirs.shared_bursts,
        theirs.non_shared_bursts,
        theirs.merges,
        theirs.splits,
    )


@settings(deadline=None, derandomize=True, max_examples=25)
@given(events=bursty_streams(), workers=st.sampled_from((2,)))
def test_multiprocess_adaptive_bit_identical(events, workers):
    """Real worker processes reproduce the adaptive bits (fixed workload)."""
    window = Window(32.0, 8.0)
    queries = [
        Query.build(seq("A", kleene("B")), group_by=("g",), window=window, name="mp_count"),
        Query.build(
            seq("A", kleene("B")),
            aggregate=sum_of("B", "v"),
            group_by=("g",),
            window=window,
            name="mp_sum",
        ),
    ]
    single = run_streaming(queries, events, engine_factory, optimizer="dynamic")
    sharded = run_sharded(
        queries,
        events,
        engine_factory,
        workers=workers,
        batch_size=32,
        optimizer="dynamic",
    )
    assert sharded.totals == single.totals
    assert partition_multiset(sharded) == partition_multiset(single)
