"""Out-of-order ingestion: the reorder buffer, late policies, differentials.

The contract under test (PR 10): with ``allowed_lateness`` set, any stream
whose events arrive within the lateness horizon of the watermark produces
**bit-identical** results to the fully ordered run — same totals, same
partition results, same emission order — through every ingestion surface
(scalar ``process``, columnar ``process_block``, the sharded driver) and
every backend/transport combination.  Events later than the horizon hit
the configured policy: ``raise`` (default), ``drop``, ``side_output`` or
``retract``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HamletEngine
from repro.errors import ExecutionError, OutOfOrderError
from repro.events import Event, EventStream
from repro.events.block import EventBlock
from repro.query import Query, Window, kleene, seq
from repro.runtime import (
    ReorderBuffer,
    ShardedStreamingExecutor,
    StreamingExecutor,
    run_sharded,
    run_streaming,
)

try:
    import numpy  # noqa: F401

    _HAS_NUMPY = True
except ImportError:  # pragma: no cover - depends on the environment
    _HAS_NUMPY = False

WINDOW = Window(16.0, 4.0)


def grouped_queries(window: Window = WINDOW) -> list[Query]:
    return [
        Query.build(seq("A", kleene("B")), group_by=("g",), window=window, name="rq1"),
        Query.build(seq("C", kleene("B")), group_by=("g",), window=window, name="rq2"),
    ]


def make_events(seed: int, size: int, groups: int = 4) -> list[Event]:
    rng = random.Random(seed)
    events = []
    clock = 0.0
    for index in range(size):
        clock += rng.random()
        type_name = rng.choices(("A", "B", "C"), weights=(1, 3, 1))[0]
        events.append(
            Event(
                type_name,
                clock,
                {"v": float(rng.randint(0, 5)), "g": float(rng.randint(1, groups))},
                sequence=index,
            )
        )
    return events


def shuffle_within(events: list[Event], horizon: float, seed: int) -> list[Event]:
    """Reorder ``events`` so every arrival stays within ``horizon`` of the
    watermark: sorting by a key displaced at most ``horizon / 2`` keeps any
    event at most ``horizon`` behind the max event time seen on arrival."""
    rng = random.Random(seed)
    return sorted(
        events,
        key=lambda event: (event.time + rng.uniform(-horizon / 2, horizon / 2)),
    )


def emission_trace(results: list) -> list[tuple]:
    """Emission-order fingerprint (latencies excluded: they are wall-clock)."""
    return [
        (
            r.group_key,
            r.window_index,
            r.window_start,
            r.window_end,
            dict(r.results),
            r.events,
            r.retraction,
        )
        for r in results
    ]


def report_fingerprint(report) -> tuple:
    return (
        dict(report.totals),
        [
            (p.group_key, p.window_index, p.window_start, dict(p.results), p.events)
            for p in report.partition_results
        ],
    )


# --------------------------------------------------------------------- #
# ReorderBuffer unit behaviour
# --------------------------------------------------------------------- #
class TestReorderBuffer:
    @staticmethod
    def _drain_keys(releases) -> list[tuple]:
        keys: list[tuple] = []
        for kind, payload in releases:
            if kind == "events":
                keys.extend((item[0], item[1]) for item in payload)
            else:  # an EventBlock slice
                keys.extend(
                    (payload.times[i], payload.sequences[i])
                    for i in range(payload.start, payload.stop)
                )
        return keys

    def test_releases_in_total_order(self):
        buffer = ReorderBuffer(5.0)
        released: list[tuple] = []
        arrivals = [(3.0, 0), (1.0, 1), (6.0, 2), (4.0, 3), (9.0, 4), (7.0, 5)]
        for time, sequence in arrivals:
            buffer.add(time, sequence, (time, sequence))
            buffer.observe(time)
            released.extend(self._drain_keys(buffer.release_ready()))
        released.extend(self._drain_keys(buffer.flush()))
        assert released == sorted((t, s) for t, s in arrivals)
        assert len(buffer) == 0

    def test_equal_time_to_watermark_stays_buffered(self):
        # Releasing events *at* the watermark would lose against a same-time
        # later-sequence arrival still within the horizon.
        buffer = ReorderBuffer(10.0)
        buffer.add(5.0, 0, (5.0, 0))
        buffer.observe(5.0)
        buffer.add(15.0, 1, (15.0, 1))
        buffer.observe(15.0)  # watermark now exactly 5.0
        assert self._drain_keys(buffer.release_ready()) == []
        assert not buffer.is_late(5.0)  # a same-time arrival is not late
        buffer.add(5.0, 2, (5.0, 2))
        buffer.observe(5.0)
        assert self._drain_keys(buffer.flush()) == [(5.0, 0), (5.0, 2), (15.0, 1)]

    def test_sorted_segments_merge_with_loose_events(self):
        events = make_events(seed=3, size=30)
        block = EventBlock.from_events(events[10:20])
        buffer = ReorderBuffer(1000.0)
        for event in events[:10] + events[20:]:
            buffer.add(event.time, event.sequence, (event.time, event.sequence))
        buffer.add_segment(block)
        keys = self._drain_keys(buffer.flush())
        assert keys == [(event.time, event.sequence) for event in events]

    def test_block_segments_release_zero_copy_slices(self):
        events = make_events(seed=4, size=12)
        buffer = ReorderBuffer(0.0)
        buffer.add_segment(EventBlock.from_events(events))
        buffer.observe(events[-1].time)
        releases = buffer.flush()
        kinds = [kind for kind, _ in releases]
        assert kinds == ["block"]
        assert releases[0][1].times is not None  # a block slice, not a list

    def test_negative_or_nan_lateness_rejected(self):
        with pytest.raises(ExecutionError, match="allowed_lateness"):
            ReorderBuffer(-1.0)
        with pytest.raises(ExecutionError, match="allowed_lateness"):
            ReorderBuffer(float("nan"))


# --------------------------------------------------------------------- #
# Config validation
# --------------------------------------------------------------------- #
class TestLatenessConfig:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ExecutionError, match="late policy"):
            StreamingExecutor(
                grouped_queries(), HamletEngine, allowed_lateness=1.0, late_policy="defer"
            )

    def test_policy_without_lateness_rejected(self):
        with pytest.raises(ExecutionError, match="allowed_lateness"):
            StreamingExecutor(grouped_queries(), HamletEngine, late_policy="drop")

    def test_side_output_requires_on_late(self):
        with pytest.raises(ExecutionError, match="on_late"):
            StreamingExecutor(
                grouped_queries(),
                HamletEngine,
                allowed_lateness=1.0,
                late_policy="side_output",
            )

    def test_on_late_requires_side_output_policy(self):
        with pytest.raises(ExecutionError, match="side_output"):
            StreamingExecutor(
                grouped_queries(),
                HamletEngine,
                allowed_lateness=1.0,
                late_policy="drop",
                on_late=lambda event: None,
            )

    def test_sharded_on_late_requires_workers_zero(self):
        with pytest.raises(ExecutionError, match="workers=0"):
            ShardedStreamingExecutor(
                grouped_queries(),
                HamletEngine,
                workers=2,
                allowed_lateness=1.0,
                late_policy="side_output",
                on_late=print,
            )

    def test_sharded_validates_policy_fail_fast(self):
        with pytest.raises(ExecutionError, match="late policy"):
            ShardedStreamingExecutor(
                grouped_queries(), HamletEngine, allowed_lateness=1.0, late_policy="bogus"
            )


# --------------------------------------------------------------------- #
# Within-horizon differential: shuffled == ordered, bit for bit
# --------------------------------------------------------------------- #
@st.composite
def _stream_and_horizon(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    size = draw(st.integers(min_value=0, max_value=120))
    horizon = draw(st.floats(min_value=0.5, max_value=30.0, allow_nan=False))
    events = make_events(seed=seed, size=size)
    return events, shuffle_within(events, horizon, seed=seed + 1), horizon


class TestWithinHorizonDifferential:
    @settings(deadline=None, derandomize=True, max_examples=40)
    @given(data=_stream_and_horizon())
    def test_scalar_process_matches_ordered_run(self, data):
        events, shuffled, horizon = data
        queries = grouped_queries()
        ordered_emissions: list = []
        ordered = run_streaming(
            queries, list(events), HamletEngine, on_window=ordered_emissions.append
        )
        buffered_emissions: list = []
        buffered = run_streaming(
            queries,
            shuffled,
            HamletEngine,
            allowed_lateness=horizon,
            on_window=buffered_emissions.append,
        )
        assert report_fingerprint(buffered) == report_fingerprint(ordered)
        assert emission_trace(buffered_emissions) == emission_trace(ordered_emissions)

    @settings(deadline=None, derandomize=True, max_examples=25)
    @given(data=_stream_and_horizon())
    def test_block_ingest_matches_ordered_run(self, data):
        events, shuffled, horizon = data
        queries = grouped_queries()
        ordered = run_streaming(queries, list(events), HamletEngine)
        executor = StreamingExecutor(queries, HamletEngine, allowed_lateness=horizon)
        buffered = executor.run(EventBlock.from_events(shuffled))
        assert report_fingerprint(buffered) == report_fingerprint(ordered)

    @settings(deadline=None, derandomize=True, max_examples=15)
    @given(
        data=_stream_and_horizon(),
        shards=st.sampled_from((1, 2, 4)),
    )
    def test_sharded_in_process_matches_ordered_run(self, data, shards):
        events, shuffled, horizon = data
        queries = grouped_queries()
        ordered = run_streaming(queries, list(events), HamletEngine)
        sharded = run_sharded(
            queries,
            shuffled,
            HamletEngine,
            workers=0,
            shards=shards,
            allowed_lateness=horizon,
        )
        assert report_fingerprint(sharded) == report_fingerprint(ordered)

    def test_in_order_stream_with_buffer_is_identical(self):
        # The buffer must be a pure pass-through on ordered input: same
        # report, same emission order, nothing dropped or retracted.
        events = make_events(seed=11, size=150)
        queries = grouped_queries()
        strict_emissions: list = []
        strict = run_streaming(
            queries, list(events), HamletEngine, on_window=strict_emissions.append
        )
        buffered_emissions: list = []
        buffered = run_streaming(
            queries,
            list(events),
            HamletEngine,
            allowed_lateness=5.0,
            on_window=buffered_emissions.append,
        )
        assert report_fingerprint(buffered) == report_fingerprint(strict)
        assert emission_trace(buffered_emissions) == emission_trace(strict_emissions)
        assert buffered.metrics.late_dropped == 0
        assert buffered.metrics.late_retracted == 0


# --------------------------------------------------------------------- #
# Backend x transport x shard-count matrix (pool mode)
# --------------------------------------------------------------------- #
_BACKENDS = (
    "python",
    pytest.param(
        "numpy", marks=pytest.mark.skipif(not _HAS_NUMPY, reason="numpy not installed")
    ),
    pytest.param(
        "auto", marks=pytest.mark.skipif(not _HAS_NUMPY, reason="numpy not installed")
    ),
)


class TestShardedMatrixDifferential:
    EVENTS = make_events(seed=21, size=150)
    SHUFFLED = shuffle_within(EVENTS, horizon=8.0, seed=22)

    def _ordered(self, backend):
        return run_streaming(
            grouped_queries(), list(self.EVENTS), HamletEngine, kernel_backend=backend
        )

    @pytest.mark.parametrize("backend", _BACKENDS)
    @pytest.mark.parametrize("transport", ("pickle", "shm"))
    def test_pool_workers_match_ordered_run(self, backend, transport):
        sharded = run_sharded(
            grouped_queries(),
            list(self.SHUFFLED),
            HamletEngine,
            workers=2,
            transport=transport,
            kernel_backend=backend,
            allowed_lateness=8.0,
        )
        assert report_fingerprint(sharded) == report_fingerprint(self._ordered(backend))

    @pytest.mark.parametrize("workers", (1, 4))
    def test_pool_shard_counts_match_ordered_run(self, workers):
        sharded = run_sharded(
            grouped_queries(),
            list(self.SHUFFLED),
            HamletEngine,
            workers=workers,
            allowed_lateness=8.0,
        )
        assert report_fingerprint(sharded) == report_fingerprint(self._ordered(None))

    def test_pool_block_ingest_matches_ordered_run(self):
        executor = ShardedStreamingExecutor(
            grouped_queries(), HamletEngine, workers=2, allowed_lateness=8.0
        )
        sharded = executor.run(EventBlock.from_events(self.SHUFFLED))
        assert report_fingerprint(sharded) == report_fingerprint(self._ordered(None))


# --------------------------------------------------------------------- #
# Equal-time events across shards
# --------------------------------------------------------------------- #
class TestEqualTimeInterleavings:
    @staticmethod
    def _equal_time_events() -> list[Event]:
        rng = random.Random(31)
        events = []
        sequence = 0
        for burst_time in (2.0, 2.0, 6.0, 6.0, 10.0):
            for _ in range(8):
                events.append(
                    Event(
                        rng.choice(("A", "B", "C")),
                        burst_time,
                        {"g": float(rng.randint(1, 4))},
                        sequence=sequence,
                    )
                )
                sequence += 1
        return events

    @pytest.mark.parametrize("shards", (2, 4))
    def test_equal_time_cross_shard_interleavings(self, shards):
        # Whole equal-time bursts arrive sequence-shuffled: the (time,
        # sequence) total order must be restored identically on every
        # shard layout.
        events = self._equal_time_events()
        ordered = run_streaming(grouped_queries(), list(events), HamletEngine)
        rng = random.Random(32)
        shuffled = sorted(events, key=lambda event: (event.time, rng.random()))
        sharded = run_sharded(
            grouped_queries(),
            shuffled,
            HamletEngine,
            workers=0,
            shards=shards,
            allowed_lateness=1.0,
        )
        assert report_fingerprint(sharded) == report_fingerprint(ordered)


# --------------------------------------------------------------------- #
# Late policies
# --------------------------------------------------------------------- #
class TestLatePolicies:
    @staticmethod
    def _with_stragglers() -> tuple[list[Event], list[Event]]:
        """An in-order core plus two stragglers far behind the horizon."""
        core = make_events(seed=41, size=80)
        anchor = max(event.time for event in core)
        late = [
            Event("B", 1.0, {"g": 1.0}, sequence=1001),
            Event("A", 2.0, {"g": 2.0}, sequence=1002),
        ]
        assert anchor - 5.0 > 2.0  # both are behind the watermark
        arrivals = core + late
        return arrivals, late

    def test_raise_is_the_default_and_names_the_watermark(self):
        arrivals, _ = self._with_stragglers()
        with pytest.raises(OutOfOrderError, match="behind the watermark"):
            run_streaming(
                grouped_queries(), arrivals, HamletEngine, allowed_lateness=5.0
            )

    def test_raise_error_is_catchable_as_both_families(self):
        # OutOfOrderError must satisfy pre-existing except clauses for both
        # StreamError and ExecutionError call sites.
        from repro.errors import StreamError

        arrivals, _ = self._with_stragglers()
        for family in (StreamError, ExecutionError):
            with pytest.raises(family):
                run_streaming(
                    grouped_queries(), arrivals, HamletEngine, allowed_lateness=5.0
                )

    def test_drop_counts_and_excludes_late_events(self):
        arrivals, late = self._with_stragglers()
        report = run_streaming(
            grouped_queries(),
            arrivals,
            HamletEngine,
            allowed_lateness=5.0,
            late_policy="drop",
        )
        clean = run_streaming(
            grouped_queries(),
            [event for event in arrivals if event not in late],
            HamletEngine,
        )
        assert report.metrics.late_dropped == len(late)
        assert report.metrics.late_side_output == 0
        assert report_fingerprint(report) == report_fingerprint(clean)
        # Dropped events never reached the core: not in stream_events.
        assert report.metrics.stream_events == len(arrivals) - len(late)

    def test_drop_counts_block_prefixes_without_materializing(self):
        arrivals, late = self._with_stragglers()
        executor = StreamingExecutor(
            grouped_queries(), HamletEngine, allowed_lateness=5.0, late_policy="drop"
        )
        report = executor.run(EventBlock.from_events(arrivals))
        assert report.metrics.late_dropped == len(late)

    def test_side_output_receives_the_late_events(self):
        arrivals, late = self._with_stragglers()
        side: list[Event] = []
        report = run_streaming(
            grouped_queries(),
            arrivals,
            HamletEngine,
            allowed_lateness=5.0,
            late_policy="side_output",
            on_late=side.append,
        )
        assert side == late
        assert report.metrics.late_side_output == len(late)
        assert report.metrics.late_dropped == 0

    def test_retract_matches_fully_ordered_run(self):
        arrivals, late = self._with_stragglers()
        ordered = run_streaming(
            grouped_queries(),
            sorted(arrivals, key=lambda event: (event.time, event.sequence)),
            HamletEngine,
        )
        report = run_streaming(
            grouped_queries(),
            arrivals,
            HamletEngine,
            allowed_lateness=5.0,
            late_policy="retract",
        )
        assert report.metrics.late_retracted == len(late)
        assert report_fingerprint(report) == report_fingerprint(ordered)

    def test_retract_reemits_changed_windows_flagged(self):
        window = Window(60.0, 30.0)
        queries = [Query.build(seq("A", kleene("B")), window=window, name="rw")]
        events = [
            Event("A", 10.0, sequence=0),
            Event("B", 20.0, sequence=1),
            Event("B", 70.0, sequence=2),
            Event("B", 130.0, sequence=3),
            Event("B", 25.0, sequence=4),  # late: changes window 0's count
            Event("B", 140.0, sequence=5),
        ]
        emitted: list = []
        report = run_streaming(
            queries,
            events,
            HamletEngine,
            allowed_lateness=50.0,
            late_policy="retract",
            on_window=emitted.append,
        )
        ordered = run_streaming(
            queries, sorted(events, key=lambda e: (e.time, e.sequence)), HamletEngine
        )
        assert report_fingerprint(report) == report_fingerprint(ordered)
        retractions = [r for r in emitted if r.retraction]
        assert len(retractions) == 1
        assert retractions[0].window_index == 0
        # The re-emission carries the corrected result.
        assert retractions[0].results == {"rw": 3.0}

    def test_retract_suppresses_unchanged_reemissions(self):
        window = Window(60.0, 30.0)
        queries = [Query.build(seq("A", kleene("B")), window=window, name="rw")]
        events = [
            Event("A", 10.0, sequence=0),
            Event("B", 20.0, sequence=1),
            Event("B", 70.0, sequence=2),
            Event("B", 130.0, sequence=3),
            Event("A", 25.0, sequence=4),  # late but changes nothing in [0, 60)
            Event("B", 140.0, sequence=5),
        ]
        emitted: list = []
        report = run_streaming(
            queries,
            events,
            HamletEngine,
            allowed_lateness=50.0,
            late_policy="retract",
            on_window=emitted.append,
        )
        assert report.metrics.late_retracted == 1
        assert [r for r in emitted if r.retraction] == []
        closes = [(r.group_key, r.window_index) for r in emitted]
        assert len(closes) == len(set(closes))  # each window emitted once

    def test_sharded_drop_counts_surface_in_merged_metrics(self):
        arrivals, late = self._with_stragglers()
        report = run_sharded(
            grouped_queries(),
            arrivals,
            HamletEngine,
            workers=0,
            shards=2,
            allowed_lateness=5.0,
            late_policy="drop",
        )
        # Per-shard watermarks trail per-shard maxima, so a shard can be
        # *more* tolerant than the global clock — never less.  Both
        # stragglers are behind every shard's horizon here.
        assert report.metrics.late_dropped == len(late)


# --------------------------------------------------------------------- #
# Checkpoints carry the buffer
# --------------------------------------------------------------------- #
class TestCheckpointWithBufferedEvents:
    @pytest.mark.parametrize("late_policy", ("raise", "retract"))
    def test_snapshot_restore_mid_buffer_resumes_identically(self, late_policy):
        events = make_events(seed=51, size=120)
        shuffled = shuffle_within(events, horizon=6.0, seed=52)
        queries = grouped_queries()
        reference = run_streaming(
            queries,
            list(shuffled),
            HamletEngine,
            allowed_lateness=6.0,
            late_policy=late_policy,
        )
        split = len(shuffled) // 2
        first = StreamingExecutor(
            queries, HamletEngine, allowed_lateness=6.0, late_policy=late_policy
        )
        for event in shuffled[:split]:
            first.process(event)
        payload = first.snapshot_state()
        second = StreamingExecutor(
            queries, HamletEngine, allowed_lateness=6.0, late_policy=late_policy
        )
        second.restore_state(payload)
        for event in shuffled[split:]:
            second.process(event)
        resumed = second.finish()
        assert report_fingerprint(resumed) == report_fingerprint(reference)

    def test_snapshot_fingerprint_pins_lateness_config(self):
        events = make_events(seed=53, size=40)
        source = StreamingExecutor(grouped_queries(), HamletEngine, allowed_lateness=4.0)
        for event in events[:20]:
            source.process(event)
        payload = source.snapshot_state()
        mismatched = StreamingExecutor(
            grouped_queries(), HamletEngine, allowed_lateness=9.0
        )
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError):
            mismatched.restore_state(payload)


# --------------------------------------------------------------------- #
# Strict mode is unchanged
# --------------------------------------------------------------------- #
class TestStrictModeUnchanged:
    def test_streaming_rejects_disorder_without_lateness(self):
        executor = StreamingExecutor(grouped_queries(), HamletEngine)
        executor.process(Event("A", 5.0, {"g": 1.0}, sequence=0))
        with pytest.raises(OutOfOrderError, match="allowed_lateness"):
            executor.process(Event("B", 4.0, {"g": 1.0}, sequence=1))

    def test_sharded_driver_rejects_disorder_without_lateness(self):
        executor = ShardedStreamingExecutor(
            grouped_queries(), HamletEngine, workers=0, shards=2
        )
        executor.process(Event("A", 5.0, {"g": 1.0}, sequence=0))
        with pytest.raises(OutOfOrderError, match="sharded executor"):
            executor.process(Event("B", 4.0, {"g": 1.0}, sequence=1))

    def test_sharded_watermark_is_min_over_shards(self):
        executor = ShardedStreamingExecutor(
            grouped_queries(), HamletEngine, workers=0, shards=2, allowed_lateness=2.0
        )
        assert executor.watermark is None
        fed = []
        for sequence, time in enumerate((1.0, 2.0, 5.0, 9.0)):
            event = Event("B", time, {"g": float(sequence % 2 + 1)}, sequence=sequence)
            executor.process(event)
            fed.append(event)
        marks = executor._shard_max_time
        expected = min(mark for mark in marks if mark != float("-inf")) - 2.0
        assert executor.watermark == expected
        executor.finish()
