"""Checkpoint container, store, and snapshot round-trip tests.

Three layers, matching `repro/runtime/checkpoint.py`'s split:

* the **RPCP container** — pack/unpack round-trips, and every corruption
  mode (bad magic, wrong version, truncation at either end, payload
  digest mismatch) raises :class:`CheckpointError` instead of returning
  garbage;
* the **CheckpointStore** — atomic write + last-good pointer semantics:
  a crash-shaped corruption of the newest file falls back to the
  previous one, pruning keeps the footprint bounded, orphaned temp files
  are collected;
* the **snapshot round trip** (hypothesis, derandomized like every other
  deterministic gate in this repo) — snapshot a
  :class:`StreamingExecutor` at an arbitrary mid-stream point (including
  mid-burst, which is where the adaptive optimizer's unflushed buffer
  lives), restore into a *fresh* executor of the same workload, feed the
  tail, and demand the finished report be **bit-identical** to an
  uninterrupted run.  The property quantifies over the workload shapes
  the equivalence suites care about: all sharing policies, GROUP BY on
  and off, negation patterns, fractional slides.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from faultline import canonical_report
from repro.errors import CheckpointError
from repro.events import Event
from repro.query import Query, Window, kleene, parse_pattern, seq, sum_of
from repro.runtime import StreamingExecutor
from repro.runtime.checkpoint import (
    MAGIC,
    TEMP_SUFFIX,
    VERSION,
    AsyncCheckpointWriter,
    Checkpoint,
    CheckpointStore,
    pack_checkpoint,
    unpack_checkpoint,
)

SETTINGS = settings(
    deadline=None,
    derandomize=True,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


# --------------------------------------------------------------------- #
# RPCP container
# --------------------------------------------------------------------- #
class TestContainer:
    def test_round_trip(self):
        blob = pack_checkpoint(3, 17, b"payload bytes")
        checkpoint = unpack_checkpoint(blob)
        assert checkpoint == Checkpoint(epoch=3, seq=17, payload=b"payload bytes")

    def test_empty_payload_round_trip(self):
        assert unpack_checkpoint(pack_checkpoint(0, 0, b"")).payload == b""

    def test_magic_is_in_the_header(self):
        assert pack_checkpoint(1, 1, b"x")[:4] == MAGIC

    def test_bad_magic_rejected(self):
        blob = b"XXXX" + pack_checkpoint(1, 1, b"x")[4:]
        with pytest.raises(CheckpointError, match="magic"):
            unpack_checkpoint(blob)

    def test_unknown_version_rejected(self):
        blob = bytearray(pack_checkpoint(1, 1, b"x"))
        blob[4] = VERSION + 1
        with pytest.raises(CheckpointError, match="version"):
            unpack_checkpoint(bytes(blob))

    def test_truncated_header_rejected(self):
        with pytest.raises(CheckpointError, match="truncated"):
            unpack_checkpoint(pack_checkpoint(1, 1, b"x")[:10])

    def test_truncated_payload_rejected(self):
        blob = pack_checkpoint(1, 1, b"a longer payload")
        with pytest.raises(CheckpointError, match="truncated"):
            unpack_checkpoint(blob[:-3])

    def test_flipped_payload_bit_rejected(self):
        blob = bytearray(pack_checkpoint(1, 1, b"a longer payload"))
        blob[-1] ^= 0x01
        with pytest.raises(CheckpointError, match="digest"):
            unpack_checkpoint(bytes(blob))


# --------------------------------------------------------------------- #
# CheckpointStore
# --------------------------------------------------------------------- #
class TestStore:
    def test_write_then_latest(self, tmp_path):
        store = CheckpointStore(tmp_path, shard_id=0)
        nbytes = store.write(0, 5, b"state five")
        assert nbytes > len(b"state five")  # container framing included
        latest = store.latest()
        assert latest == Checkpoint(epoch=0, seq=5, payload=b"state five")

    def test_latest_prefers_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, shard_id=0)
        store.write(0, 5, b"old")
        store.write(0, 9, b"new")
        assert store.latest().seq == 9

    def test_empty_store_has_no_latest(self, tmp_path):
        assert CheckpointStore(tmp_path, shard_id=0).latest() is None

    def test_corrupt_newest_falls_back_to_previous(self, tmp_path):
        """The last-good guarantee: a torn newest file is skipped."""
        store = CheckpointStore(tmp_path, shard_id=0, keep=2)
        store.write(0, 5, b"good")
        store.write(0, 9, b"about to be torn")
        newest = max(tmp_path.glob("shard000-e*.ckpt"), key=lambda p: p.name)
        newest.write_bytes(newest.read_bytes()[:-4])  # simulate a torn write
        assert store.latest() == Checkpoint(epoch=0, seq=5, payload=b"good")

    def test_stale_pointer_falls_back_to_scan(self, tmp_path):
        store = CheckpointStore(tmp_path, shard_id=0)
        store.write(0, 5, b"good")
        (tmp_path / "shard000.latest").write_text("no-such-file.ckpt", encoding="utf-8")
        assert store.latest().seq == 5

    def test_prune_bounds_the_footprint(self, tmp_path):
        store = CheckpointStore(tmp_path, shard_id=0, keep=2)
        for seq in range(6):
            store.write(0, seq, b"s%d" % seq)
        remaining = sorted(p.name for p in tmp_path.glob("*.ckpt"))
        assert len(remaining) == 2
        assert store.latest().seq == 5

    def test_shards_are_isolated(self, tmp_path):
        zero = CheckpointStore(tmp_path, shard_id=0)
        one = CheckpointStore(tmp_path, shard_id=1)
        zero.write(0, 1, b"zero")
        one.write(0, 2, b"one")
        assert zero.latest().payload == b"zero"
        assert one.latest().payload == b"one"

    def test_clean_temporaries(self, tmp_path):
        store = CheckpointStore(tmp_path, shard_id=0)
        (tmp_path / f"shard000-junk{TEMP_SUFFIX}").write_bytes(b"crash debris")
        other = tmp_path / f"shard001-junk{TEMP_SUFFIX}"
        other.write_bytes(b"someone else's debris")
        assert store.clean_temporaries() == 1
        assert not list(tmp_path.glob(f"shard000*{TEMP_SUFFIX}"))
        assert other.exists()  # other shards' files are not ours to delete

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(CheckpointError, match="keep"):
            CheckpointStore(tmp_path, shard_id=0, keep=0)


class TestAsyncWriter:
    def test_writes_are_durable_and_acked(self, tmp_path):
        acks = []

        class Ack:
            def send(self, item):
                acks.append(item)

        store = CheckpointStore(tmp_path, shard_id=0)
        writer = AsyncCheckpointWriter(store, ack=Ack())
        writer.submit(0, 3, b"three")
        writer.submit(0, 7, b"seven")
        writer.close()
        assert store.latest().seq == 7
        assert [(epoch, seq) for epoch, seq, _ in acks] == [(0, 3), (0, 7)]
        assert all(nbytes > 0 for _, _, nbytes in acks)

    def test_store_failure_surfaces_on_close(self, tmp_path):
        store = CheckpointStore(tmp_path, shard_id=0)
        writer = AsyncCheckpointWriter(store)
        store.directory = tmp_path / "deleted" / "nested"  # force write errors
        writer.submit(0, 1, b"x")
        with pytest.raises(CheckpointError, match="checkpoint writer failed"):
            writer.close()

    def test_abort_never_raises(self, tmp_path):
        writer = AsyncCheckpointWriter(CheckpointStore(tmp_path, shard_id=0))
        writer.abort()
        writer.abort()  # idempotent


# --------------------------------------------------------------------- #
# Snapshot round trip (hypothesis)
# --------------------------------------------------------------------- #
WINDOWS = (Window(32.0), Window(32.0, 8.0), Window(16.0, 3.2))  # incl. fractional

PATTERNS = (
    ("pa", lambda: seq("A", kleene("B"))),
    ("pn", lambda: parse_pattern("SEQ(A, NOT X, B+)")),
)

OPTIMIZERS = (None, "dynamic", "always", "never")


def _workload(window: Window, group_by: tuple, with_negation: bool) -> list[Query]:
    queries = [
        Query.build(seq("A", kleene("B")), group_by=group_by, window=window, name="ckq1"),
        Query.build(
            seq("A", kleene("B")),
            aggregate=sum_of("B", "v"),
            group_by=group_by,
            window=window,
            name="ckq2",
        ),
    ]
    if with_negation:
        queries.append(
            Query.build(
                parse_pattern("SEQ(A, NOT X, B+)"),
                group_by=group_by,
                window=window,
                name="ckq3",
            )
        )
    return queries


@st.composite
def round_trip_cases(draw):
    window = draw(st.sampled_from(WINDOWS))
    group_by = draw(st.sampled_from(((), ("g",))))
    with_negation = draw(st.booleans())
    optimizer = draw(st.sampled_from(OPTIMIZERS))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    size = draw(st.integers(min_value=40, max_value=160))
    split = draw(st.integers(min_value=1, max_value=size - 1))
    rng = random.Random(seed)
    events = []
    clock = 0.0
    # Same-type runs so `split` can land mid-burst: the snapshot must
    # carry the optimizer's unflushed burst buffer, not flush it early.
    while len(events) < size:
        type_name = rng.choice("ABXB")  # B-heavy: longer kleene runs
        for _ in range(rng.randint(1, 5)):
            events.append(
                Event(
                    type_name,
                    clock,
                    {"v": float(rng.randint(0, 6)), "g": float(rng.randint(1, 3))},
                )
            )
            clock += rng.choice((0.5, 1.0))
    events = events[:size]
    return _workload(window, group_by, with_negation), events, split, optimizer


def _fresh(queries, optimizer) -> StreamingExecutor:
    return StreamingExecutor(queries, optimizer=optimizer)


@SETTINGS
@given(case=round_trip_cases())
def test_snapshot_round_trip_is_bit_identical(case):
    queries, events, split, optimizer = case
    uninterrupted = _fresh(queries, optimizer)
    for event in events:
        uninterrupted.process(event)
    expected = canonical_report(uninterrupted.finish())

    first = _fresh(queries, optimizer)
    for event in events[:split]:
        first.process(event)
    payload = first.snapshot_state()

    second = _fresh(queries, optimizer)
    second.restore_state(payload)
    for event in events[split:]:
        second.process(event)
    assert canonical_report(second.finish()) == expected


@SETTINGS
@given(case=round_trip_cases())
def test_snapshot_survives_the_disk_container(case, tmp_path_factory):
    """Snapshot -> RPCP container on disk -> restore: still bit-identical."""
    queries, events, split, optimizer = case
    uninterrupted = _fresh(queries, optimizer)
    for event in events:
        uninterrupted.process(event)
    expected = canonical_report(uninterrupted.finish())

    first = _fresh(queries, optimizer)
    for event in events[:split]:
        first.process(event)
    store = CheckpointStore(tmp_path_factory.mktemp("ckpt"), shard_id=0)
    store.write(0, split, first.snapshot_state())

    second = _fresh(queries, optimizer)
    second.restore_state(store.latest().payload)
    for event in events[split:]:
        second.process(event)
    assert canonical_report(second.finish()) == expected


def test_restore_refuses_a_different_workload():
    window = Window(16.0, 4.0)
    source = StreamingExecutor(_workload(window, ("g",), False))
    payload = source.snapshot_state()
    other = StreamingExecutor(_workload(window, ("g",), True))  # extra query
    with pytest.raises(CheckpointError, match="different workload"):
        other.restore_state(payload)


def test_restore_refuses_garbage_payloads():
    executor = StreamingExecutor(_workload(Window(16.0, 4.0), ("g",), False))
    with pytest.raises(CheckpointError, match="undecodable"):
        executor.restore_state(b"not a snapshot")


def test_windows_closed_counts_closed_windows():
    executor = StreamingExecutor(_workload(Window(8.0), (), False))
    assert executor.windows_closed == 0
    for index in range(40):
        executor.process(Event("A", float(index), {"v": 1.0, "g": 1.0}))
    executor.finish()
    assert executor.windows_closed > 0
