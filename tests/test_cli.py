"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_demo_command_runs(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "HAMLET (shared)" in output
        assert "'q1': 30" in output

    def test_table1_figure_runs(self, capsys):
        assert main(["figures", "table1"]) == 0
        output = capsys.readouterr().out
        assert "hamlet" in output
        assert "dynamic" in output

    def test_stream_command_emits_window_results(self, capsys):
        assert main(["stream", "--queries", "2", "--minutes", "0.5", "--events-per-minute", "600"]) == 0
        output = capsys.readouterr().out
        assert "window [" in output
        assert "active" in output
        assert "shared-window execution" in output
        assert "overlap factor 5" in output
        assert "per event" in output

    def test_stream_command_per_instance_fallback_flag(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--queries",
                    "2",
                    "--minutes",
                    "0.5",
                    "--events-per-minute",
                    "600",
                    "--no-shared-windows",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "per-instance execution" in output
        assert "overlap factor 5" in output

    def test_stream_command_sharded_in_process(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--queries",
                    "2",
                    "--minutes",
                    "0.5",
                    "--events-per-minute",
                    "600",
                    "--workers",
                    "0",
                    "--shard-batch",
                    "64",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "sharded execution: 1 shard(s), 0 worker process(es)" in output
        assert "routing by group" in output
        assert "shard 0:" in output
        assert "events/s wall-clock" in output

    def test_stream_command_sharded_worker_processes(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--queries",
                    "2",
                    "--minutes",
                    "0.5",
                    "--events-per-minute",
                    "600",
                    "--workers",
                    "2",
                    "--shard-batch",
                    "32",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "2 shard(s), 2 worker process(es)" in output
        assert "batches of 32" in output
        assert "shard 0:" in output and "shard 1:" in output
        assert "events/s wall-clock" in output

    def test_stream_command_prints_wall_clock_throughput(self, capsys):
        assert main(["stream", "--queries", "2", "--minutes", "0.3", "--events-per-minute", "600"]) == 0
        output = capsys.readouterr().out
        assert "wall-clock throughput:" in output

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figures", "fig99"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
