"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_demo_command_runs(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "HAMLET (shared)" in output
        assert "'q1': 30" in output

    def test_table1_figure_runs(self, capsys):
        assert main(["figures", "table1"]) == 0
        output = capsys.readouterr().out
        assert "hamlet" in output
        assert "dynamic" in output

    def test_stream_command_emits_window_results(self, capsys):
        assert main(["stream", "--queries", "2", "--minutes", "0.5", "--events-per-minute", "600"]) == 0
        output = capsys.readouterr().out
        assert "window [" in output
        assert "active" in output
        assert "shared-window execution" in output
        assert "overlap factor 5" in output
        assert "per event" in output

    def test_stream_command_per_instance_fallback_flag(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--queries",
                    "2",
                    "--minutes",
                    "0.5",
                    "--events-per-minute",
                    "600",
                    "--no-shared-windows",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "per-instance execution" in output
        assert "overlap factor 5" in output

    def test_stream_command_sharded_in_process(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--queries",
                    "2",
                    "--minutes",
                    "0.5",
                    "--events-per-minute",
                    "600",
                    "--workers",
                    "0",
                    "--shard-batch",
                    "64",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "sharded execution: 1 shard(s), 0 worker process(es)" in output
        assert "routing by group" in output
        assert "shard 0:" in output
        assert "events/s wall-clock" in output

    def test_stream_command_sharded_worker_processes(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--queries",
                    "2",
                    "--minutes",
                    "0.5",
                    "--events-per-minute",
                    "600",
                    "--workers",
                    "2",
                    "--shard-batch",
                    "32",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "2 shard(s), 2 worker process(es)" in output
        assert "batches of 32" in output
        assert "shard 0:" in output and "shard 1:" in output
        assert "events/s wall-clock" in output

    def test_stream_command_optimizer_prints_decision_summary(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--queries",
                    "8",
                    "--minutes",
                    "0.5",
                    "--events-per-minute",
                    "600",
                    "--optimizer",
                    "dynamic",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "optimizer dynamic:" in output
        assert "decisions" in output
        assert "shared fraction" in output
        assert "merges" in output and "splits" in output

    def test_stream_command_optimizer_never_reports_zero_shared_fraction(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--queries",
                    "8",
                    "--minutes",
                    "0.5",
                    "--events-per-minute",
                    "600",
                    "--optimizer",
                    "never",
                    "--burst-size",
                    "16",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "optimizer never:" in output
        assert "shared fraction 0.0%" in output

    def test_stream_command_optimizer_propagates_to_sharded_run(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--queries",
                    "8",
                    "--minutes",
                    "0.5",
                    "--events-per-minute",
                    "600",
                    "--optimizer",
                    "always",
                    "--workers",
                    "0",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "sharded execution" in output
        assert "optimizer always:" in output
        assert "shared fraction 100.0%" in output

    def test_stream_command_rejects_unknown_optimizer_and_bad_burst_size(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--optimizer", "sometimes"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--burst-size", "0"])

    def test_stream_command_burst_size_requires_optimizer(self, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--burst-size", "8"])
        assert "--burst-size requires --optimizer" in capsys.readouterr().err

    def test_stream_command_prints_wall_clock_throughput(self, capsys):
        assert main(["stream", "--queries", "2", "--minutes", "0.3", "--events-per-minute", "600"]) == 0
        output = capsys.readouterr().out
        assert "wall-clock throughput:" in output

    def test_stream_command_checkpointing_prints_recovery_summary(self, capsys, tmp_path):
        assert (
            main(
                [
                    "stream",
                    "--queries",
                    "2",
                    "--minutes",
                    "0.5",
                    "--events-per-minute",
                    "600",
                    "--workers",
                    "2",
                    "--shard-batch",
                    "32",
                    "--checkpoint-dir",
                    str(tmp_path),
                    "--checkpoint-interval",
                    "2",
                    "--max-restarts",
                    "1",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "recovery:" in output
        assert "restart(s)" in output
        assert "checkpoint(s)" in output
        assert "driver waited" in output

    def test_stream_command_without_checkpoint_dir_prints_no_recovery(self, capsys):
        assert (
            main(
                ["stream", "--queries", "2", "--minutes", "0.3", "--events-per-minute", "600"]
            )
            == 0
        )
        assert "recovery:" not in capsys.readouterr().out

    def test_stream_command_checkpoint_dir_requires_workers(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["stream", "--checkpoint-dir", str(tmp_path)])
        assert "--checkpoint-dir requires --workers" in capsys.readouterr().err

    def test_stream_command_rejects_bad_checkpoint_arguments(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--checkpoint-interval", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--max-restarts", "-1"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figures", "fig99"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
